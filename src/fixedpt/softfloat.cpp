#include "fixedpt/softfloat.hpp"

#include <bit>
#include <cassert>

namespace nistream::fixedpt {
namespace {

constexpr std::uint32_t kSignMask = 0x80000000u;
constexpr std::uint32_t kFracMask = 0x007fffffu;
constexpr std::uint32_t kImplied = 0x00800000u;  // hidden leading 1
constexpr std::uint32_t kQuietNan = 0x7fc00000u;
constexpr int kExpBias = 127;

struct Unpacked {
  std::uint32_t sign;  // 0 or 1
  std::int32_t exp;    // raw biased exponent, 0..255
  std::uint32_t frac;  // 23 bits, without implied bit
};

constexpr Unpacked unpack(std::uint32_t b) {
  return Unpacked{b >> 31, static_cast<std::int32_t>((b >> 23) & 0xff),
                  b & kFracMask};
}

constexpr std::uint32_t pack(std::uint32_t sign, std::int32_t exp,
                             std::uint32_t frac) {
  return (sign << 31) | (static_cast<std::uint32_t>(exp) << 23) |
         (frac & kFracMask);
}

constexpr bool raw_is_nan(const Unpacked& u) { return u.exp == 255 && u.frac != 0; }
constexpr bool raw_is_inf(const Unpacked& u) { return u.exp == 255 && u.frac == 0; }
// With flush-to-zero, exp==0 means zero whatever the fraction bits say.
constexpr bool raw_is_zero(const Unpacked& u) { return u.exp == 0; }

constexpr std::uint32_t signed_zero(std::uint32_t sign) { return sign << 31; }
constexpr std::uint32_t signed_inf(std::uint32_t sign) {
  return pack(sign, 255, 0);
}

/// Round-to-nearest-even a significand carrying 3 extra bits (guard, round,
/// sticky) in its low bits; returns the rounded 24-bit (or 25-bit on carry)
/// significand.
constexpr std::uint64_t round_rne_3(std::uint64_t sig_grs) {
  const std::uint64_t lsb = (sig_grs >> 3) & 1;
  const std::uint64_t grs = sig_grs & 7;
  std::uint64_t sig = sig_grs >> 3;
  if (grs > 4 || (grs == 4 && lsb)) ++sig;
  return sig;
}

/// Finalize a result whose 24-bit significand (possibly 25 bits after a
/// rounding carry) and biased exponent are known.
constexpr std::uint32_t finalize(std::uint32_t sign, std::int32_t exp,
                                 std::uint64_t sig24) {
  if (sig24 & (std::uint64_t{1} << 24)) {  // rounding carried out
    sig24 >>= 1;
    ++exp;
  }
  if (exp >= 255) return signed_inf(sign);
  if (exp <= 0 || sig24 == 0) return signed_zero(sign);  // flush-to-zero
  return pack(sign, exp, static_cast<std::uint32_t>(sig24) & kFracMask);
}

std::uint32_t add_magnitudes(Unpacked a, Unpacked b, std::uint32_t sign) {
  // Precondition: a.exp >= b.exp, both finite non-zero.
  const std::int32_t diff = a.exp - b.exp;
  std::uint64_t sa = (std::uint64_t{a.frac} | kImplied) << 3;
  std::uint64_t sb = (std::uint64_t{b.frac} | kImplied) << 3;
  if (diff >= 27) {
    sb = 1;  // pure sticky
  } else if (diff > 0) {
    const std::uint64_t lost = sb & ((std::uint64_t{1} << diff) - 1);
    sb = (sb >> diff) | (lost ? 1 : 0);
  }
  std::uint64_t sum = sa + sb;
  std::int32_t exp = a.exp;
  if (sum & (std::uint64_t{1} << 27)) {  // carry out of the 24-bit field
    const std::uint64_t lost = sum & 1;
    sum = (sum >> 1) | lost;
    ++exp;
  }
  return finalize(sign, exp, round_rne_3(sum));
}

std::uint32_t sub_magnitudes(Unpacked a, Unpacked b) {
  // Computes |a| - |b| with correct sign; a and b finite non-zero.
  std::uint32_t sign;
  // Order so that |a| >= |b|.
  if (a.exp < b.exp || (a.exp == b.exp && a.frac < b.frac)) {
    std::swap(a, b);
    sign = a.sign;  // after the swap, a is the larger magnitude
  } else {
    sign = a.sign;
  }
  if (a.exp == b.exp && a.frac == b.frac) return signed_zero(0);  // exact zero: +0

  const std::int32_t diff = a.exp - b.exp;
  std::uint64_t sa = (std::uint64_t{a.frac} | kImplied) << 3;
  std::uint64_t sb = (std::uint64_t{b.frac} | kImplied) << 3;
  if (diff >= 27) {
    sb = 1;
  } else if (diff > 0) {
    const std::uint64_t lost = sb & ((std::uint64_t{1} << diff) - 1);
    sb = (sb >> diff) | (lost ? 1 : 0);
  }
  std::uint64_t dif = sa - sb;
  std::int32_t exp = a.exp;
  // Normalize: bring the leading bit back to position 26.
  while (dif != 0 && !(dif & (std::uint64_t{1} << 26))) {
    dif <<= 1;
    --exp;
    if (exp <= 0) return signed_zero(sign);  // flush-to-zero
  }
  return finalize(sign, exp, round_rne_3(dif));
}

}  // namespace

SoftFloat SoftFloat::from_float(float f) {
  auto b = std::bit_cast<std::uint32_t>(f);
  const Unpacked u = unpack(b);
  if (u.exp == 0) b = signed_zero(u.sign);  // flush subnormal inputs
  return from_bits(b);
}

SoftFloat SoftFloat::from_int(std::int32_t v) {
  if (v == 0) return from_bits(0);
  const std::uint32_t sign = v < 0 ? 1u : 0u;
  std::uint64_t mag = sign ? -static_cast<std::int64_t>(v) : v;
  std::int32_t exp = kExpBias + 23;
  // Normalize to 24 bits with GRS sticky collection for large magnitudes.
  std::uint64_t grs = mag << 3;
  while (grs >= (std::uint64_t{1} << 27)) {
    const std::uint64_t lost = grs & 1;
    grs = (grs >> 1) | lost;
    ++exp;
  }
  while (grs < (std::uint64_t{1} << 26)) {
    grs <<= 1;
    --exp;
  }
  return from_bits(finalize(sign, exp, round_rne_3(grs)));
}

float SoftFloat::to_float() const { return std::bit_cast<float>(bits_); }

bool SoftFloat::is_nan() const { return raw_is_nan(unpack(bits_)); }
bool SoftFloat::is_inf() const { return raw_is_inf(unpack(bits_)); }
bool SoftFloat::is_zero() const { return raw_is_zero(unpack(bits_)); }

SoftFloat operator+(SoftFloat x, SoftFloat y) {
  Unpacked a = unpack(x.bits_), b = unpack(y.bits_);
  if (raw_is_nan(a) || raw_is_nan(b)) return SoftFloat::from_bits(kQuietNan);
  if (raw_is_inf(a) || raw_is_inf(b)) {
    if (raw_is_inf(a) && raw_is_inf(b) && a.sign != b.sign)
      return SoftFloat::from_bits(kQuietNan);
    return SoftFloat::from_bits(raw_is_inf(a) ? x.bits_ : y.bits_);
  }
  if (raw_is_zero(a) && raw_is_zero(b)) {
    // +0 + -0 == +0 under round-to-nearest.
    return SoftFloat::from_bits(signed_zero(a.sign & b.sign));
  }
  if (raw_is_zero(a)) return y;
  if (raw_is_zero(b)) return x;

  if (a.sign == b.sign) {
    if (a.exp < b.exp || (a.exp == b.exp && a.frac < b.frac)) std::swap(a, b);
    return SoftFloat::from_bits(add_magnitudes(a, b, a.sign));
  }
  // Opposite signs: true subtraction of magnitudes; the sign of the larger
  // magnitude wins, so encode b's role by flipping it into sub_magnitudes.
  return SoftFloat::from_bits(sub_magnitudes(a, b));
}

SoftFloat operator-(SoftFloat x, SoftFloat y) {
  return x + SoftFloat::from_bits(y.bits_ ^ kSignMask);
}

SoftFloat operator*(SoftFloat x, SoftFloat y) {
  const Unpacked a = unpack(x.bits_), b = unpack(y.bits_);
  const std::uint32_t sign = a.sign ^ b.sign;
  if (raw_is_nan(a) || raw_is_nan(b)) return SoftFloat::from_bits(kQuietNan);
  if (raw_is_inf(a) || raw_is_inf(b)) {
    if (raw_is_zero(a) || raw_is_zero(b)) return SoftFloat::from_bits(kQuietNan);
    return SoftFloat::from_bits(signed_inf(sign));
  }
  if (raw_is_zero(a) || raw_is_zero(b))
    return SoftFloat::from_bits(signed_zero(sign));

  std::int32_t exp = a.exp + b.exp - kExpBias;
  const std::uint64_t p = static_cast<std::uint64_t>(a.frac | kImplied) *
                          (b.frac | kImplied);  // in [2^46, 2^48)
  // Reduce the 48-bit product to 24-bit significand + 3 GRS bits (27 bits);
  // everything below the sticky position ORs into bit 0.
  std::uint64_t q;
  if (p & (std::uint64_t{1} << 47)) {
    ++exp;
    q = (p >> 21) | ((p & ((std::uint64_t{1} << 21) - 1)) ? 1 : 0);
  } else {
    q = (p >> 20) | ((p & ((std::uint64_t{1} << 20) - 1)) ? 1 : 0);
  }
  return SoftFloat::from_bits(finalize(sign, exp, round_rne_3(q)));
}

SoftFloat operator/(SoftFloat x, SoftFloat y) {
  const Unpacked a = unpack(x.bits_), b = unpack(y.bits_);
  const std::uint32_t sign = a.sign ^ b.sign;
  if (raw_is_nan(a) || raw_is_nan(b)) return SoftFloat::from_bits(kQuietNan);
  if (raw_is_inf(a)) {
    if (raw_is_inf(b)) return SoftFloat::from_bits(kQuietNan);
    return SoftFloat::from_bits(signed_inf(sign));
  }
  if (raw_is_inf(b)) return SoftFloat::from_bits(signed_zero(sign));
  if (raw_is_zero(b)) {
    if (raw_is_zero(a)) return SoftFloat::from_bits(kQuietNan);
    return SoftFloat::from_bits(signed_inf(sign));
  }
  if (raw_is_zero(a)) return SoftFloat::from_bits(signed_zero(sign));

  std::int32_t exp = a.exp - b.exp + kExpBias;
  const std::uint64_t sa = std::uint64_t{a.frac} | kImplied;
  const std::uint64_t sb = std::uint64_t{b.frac} | kImplied;
  // One extra quotient bit beyond the 27 we keep, so normalization never
  // invents precision: q in (2^26, 2^28].
  const std::uint64_t num = sa << 27;
  std::uint64_t q = num / sb;
  std::uint64_t sticky = (num % sb) ? 1 : 0;
  if (q & (std::uint64_t{1} << 27)) {
    sticky |= q & 1;
    q >>= 1;
  } else {
    --exp;
  }
  q |= sticky;
  return SoftFloat::from_bits(finalize(sign, exp, round_rne_3(q)));
}

bool operator==(SoftFloat a, SoftFloat b) {
  const Unpacked ua = unpack(a.bits_), ub = unpack(b.bits_);
  if (raw_is_nan(ua) || raw_is_nan(ub)) return false;
  if (raw_is_zero(ua) && raw_is_zero(ub)) return true;  // +0 == -0
  return a.bits_ == b.bits_;
}

bool operator<(SoftFloat a, SoftFloat b) {
  const Unpacked ua = unpack(a.bits_), ub = unpack(b.bits_);
  if (raw_is_nan(ua) || raw_is_nan(ub)) return false;
  if (raw_is_zero(ua) && raw_is_zero(ub)) return false;
  // Compare as sign-magnitude: map to a monotonically ordered integer key.
  const auto key = [](std::uint32_t bits) -> std::int64_t {
    const std::int64_t mag = bits & 0x7fffffff;
    return (bits & kSignMask) ? -mag : mag;
  };
  // Flushed zeros: treat exp==0 as magnitude 0 regardless of fraction bits.
  const auto norm = [](const Unpacked& u, std::uint32_t bits) -> std::uint32_t {
    return raw_is_zero(u) ? signed_zero(u.sign) : bits;
  };
  return key(norm(ua, a.bits_)) < key(norm(ub, b.bits_));
}

bool operator<=(SoftFloat a, SoftFloat b) {
  const Unpacked ua = unpack(a.bits_), ub = unpack(b.bits_);
  if (raw_is_nan(ua) || raw_is_nan(ub)) return false;
  return a == b || a < b;
}

}  // namespace nistream::fixedpt
