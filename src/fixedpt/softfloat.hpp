// Software-emulated IEEE-754 binary32 arithmetic.
//
// The i960 RD has no floating-point unit; the paper's first DWCS port uses
// the VxWorks software floating-point library and measures ~20 us of extra
// scheduling latency per decision from it. We reproduce that substrate as a
// real soft-float implementation (integer-only add/sub/mul/div/compare with
// round-to-nearest-even), so the fixed-point-vs-soft-float ablation compares
// genuine implementations, and so the CPU cost model can charge emulation
// cycles at exactly the call sites that would have trapped to the library.
//
// Simplification relative to full IEEE-754 (documented, tested accordingly):
// subnormal inputs and outputs are flushed to zero — the common embedded-
// library behaviour. NaNs are canonicalized (no payload propagation).
#pragma once

#include <cstdint>
#include <ostream>

namespace nistream::fixedpt {

class SoftFloat {
 public:
  constexpr SoftFloat() = default;

  [[nodiscard]] static SoftFloat from_float(float f);
  [[nodiscard]] static SoftFloat from_int(std::int32_t v);
  [[nodiscard]] static constexpr SoftFloat from_bits(std::uint32_t b) {
    return SoftFloat{b};
  }

  [[nodiscard]] float to_float() const;
  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }

  [[nodiscard]] bool is_nan() const;
  [[nodiscard]] bool is_inf() const;
  [[nodiscard]] bool is_zero() const;

  friend SoftFloat operator+(SoftFloat a, SoftFloat b);
  friend SoftFloat operator-(SoftFloat a, SoftFloat b);
  friend SoftFloat operator*(SoftFloat a, SoftFloat b);
  friend SoftFloat operator/(SoftFloat a, SoftFloat b);

  /// IEEE comparisons: any comparison with NaN is false (except !=).
  friend bool operator==(SoftFloat a, SoftFloat b);
  friend bool operator<(SoftFloat a, SoftFloat b);
  friend bool operator>(SoftFloat a, SoftFloat b) { return b < a; }
  friend bool operator<=(SoftFloat a, SoftFloat b);
  friend bool operator>=(SoftFloat a, SoftFloat b) { return b <= a; }

  friend std::ostream& operator<<(std::ostream& os, SoftFloat f) {
    return os << f.to_float();
  }

 private:
  explicit constexpr SoftFloat(std::uint32_t b) : bits_{b} {}
  std::uint32_t bits_ = 0;
};

}  // namespace nistream::fixedpt
