// Q16.16 fixed-point scalar.
//
// The embedded DWCS port needs "fractional values to one or two decimal
// places" (paper §4.2). Q16.16 gives ~4.6 decimal digits of fraction in a
// 32-bit word — ample — with add/sub as plain integer ops and mul/div as a
// 64-bit multiply plus shift, exactly the operations an i960 (no FPU)
// executes cheaply.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <ostream>

namespace nistream::fixedpt {

class Fixed {
 public:
  static constexpr int kFractionBits = 16;
  static constexpr std::int64_t kOne = std::int64_t{1} << kFractionBits;

  constexpr Fixed() = default;

  [[nodiscard]] static constexpr Fixed from_int(std::int64_t v) {
    return Fixed{v << kFractionBits};
  }
  [[nodiscard]] static constexpr Fixed from_double(double v) {
    return Fixed{static_cast<std::int64_t>(v * static_cast<double>(kOne) +
                                           (v >= 0 ? 0.5 : -0.5))};
  }
  /// Exact ratio a/b rounded to nearest representable value.
  [[nodiscard]] static constexpr Fixed from_ratio(std::int64_t a, std::int64_t b) {
    assert(b != 0);
    const __int128 scaled = static_cast<__int128>(a) << kFractionBits;
    __int128 q = scaled / b;
    const __int128 rem2 = (scaled % b) * 2;
    if (rem2 >= b) ++q; else if (rem2 <= -b) --q;
    return Fixed{static_cast<std::int64_t>(q)};
  }
  [[nodiscard]] static constexpr Fixed raw(std::int64_t bits) { return Fixed{bits}; }

  [[nodiscard]] constexpr std::int64_t raw_bits() const { return bits_; }
  [[nodiscard]] constexpr double to_double() const {
    return static_cast<double>(bits_) / static_cast<double>(kOne);
  }
  [[nodiscard]] constexpr std::int64_t to_int() const {
    // Truncation toward negative infinity (arithmetic shift).
    return bits_ >> kFractionBits;
  }

  constexpr auto operator<=>(const Fixed&) const = default;

  friend constexpr Fixed operator+(Fixed a, Fixed b) { return Fixed{a.bits_ + b.bits_}; }
  friend constexpr Fixed operator-(Fixed a, Fixed b) { return Fixed{a.bits_ - b.bits_}; }
  friend constexpr Fixed operator*(Fixed a, Fixed b) {
    return Fixed{static_cast<std::int64_t>(
        (static_cast<__int128>(a.bits_) * b.bits_) >> kFractionBits)};
  }
  friend constexpr Fixed operator/(Fixed a, Fixed b) {
    assert(b.bits_ != 0);
    return Fixed{static_cast<std::int64_t>(
        (static_cast<__int128>(a.bits_) << kFractionBits) / b.bits_)};
  }
  constexpr Fixed& operator+=(Fixed o) { bits_ += o.bits_; return *this; }
  constexpr Fixed& operator-=(Fixed o) { bits_ -= o.bits_; return *this; }

  /// Shift-division (divisor a power of two): single arithmetic shift.
  [[nodiscard]] constexpr Fixed shr(int shift) const { return Fixed{bits_ >> shift}; }

  friend std::ostream& operator<<(std::ostream& os, Fixed f) {
    return os << f.to_double();
  }

 private:
  explicit constexpr Fixed(std::int64_t bits) : bits_{bits} {}
  std::int64_t bits_ = 0;
};

}  // namespace nistream::fixedpt
