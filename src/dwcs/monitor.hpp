// Sliding-window constraint checker.
//
// Independent verification of the DWCS service guarantee: for a stream with
// tolerance x/y, every window of y *consecutive* packets may contain at most
// x losses (drops or late transmissions). The monitor watches the outcome
// sequence a scheduler produces and counts windows that break the bound.
//
// It is used three ways:
//  * as the oracle in DWCS property tests (under feasible load the DWCS
//    violation count must stay at/near zero while baselines rack them up);
//  * as the scoring function of the ablate_policy bench;
//  * as the QoS ledger of the cluster control plane, where one logical
//    stream may be served by several boards over its lifetime.
//
// Stats are keyed by (board scope, stream id), not by stream id alone: a
// stream re-admitted on a sibling NI after its home board crashed gets a
// fresh key there, so its post-migration outcome sequence cannot alias the
// counters it accumulated before the crash (the dead placement's stats stay
// frozen, attributable to the outage). Single-scheduler users keep the old
// positional API — it is the keyed API specialized to scope 0.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "dwcs/types.hpp"

namespace nistream::dwcs {

class WindowViolationMonitor {
 public:
  /// Identifies one *placement* of a stream: the scheduler scope it runs in
  /// (a board id, usually folded with the board incarnation so a reboot
  /// starts a fresh window history) and the service-local stream id there.
  struct StreamKey {
    std::uint32_t scope = 0;  // board (+ incarnation); 0 = single-scheduler
    StreamId stream = 0;

    friend bool operator==(const StreamKey&, const StreamKey&) = default;
  };

  enum class Outcome : std::uint8_t { kOnTime, kLate, kDropped };

  /// Register a stream under an explicit placement key. Re-registering an
  /// existing key keeps its state (a hang-recovered board resumes the same
  /// window history — nothing was wiped).
  void add_stream(StreamKey key, const WindowConstraint& c) {
    states_.try_emplace(pack(key), State{c, {}, 0, 0, 0});
  }

  /// Legacy single-scheduler registration: ids must be registered in order,
  /// all under scope 0.
  void add_stream(const WindowConstraint& c) {
    add_stream(StreamKey{0, next_seq_++}, c);
  }

  /// Record the outcome of the next consecutive packet of `key`.
  void record(StreamKey key, Outcome o) {
    State& s = states_.at(pack(key));
    if (s.retired) return;
    const bool lost = o != Outcome::kOnTime;
    s.window.push_back(lost);
    s.losses_in_window += lost;
    ++s.packets;
    if (static_cast<std::int64_t>(s.window.size()) > s.constraint.y) {
      s.losses_in_window -= s.window.front();
      s.window.pop_front();
    }
    // Only full windows can violate; count each offending window position.
    if (static_cast<std::int64_t>(s.window.size()) == s.constraint.y &&
        s.losses_in_window > s.constraint.x) {
      ++s.violating_windows;
    }
  }
  void record(StreamId id, Outcome o) { record(StreamKey{0, id}, o); }

  [[nodiscard]] std::uint64_t violating_windows(StreamKey key) const {
    return states_.at(pack(key)).violating_windows;
  }
  [[nodiscard]] std::uint64_t violating_windows(StreamId id) const {
    return violating_windows(StreamKey{0, id});
  }
  [[nodiscard]] std::uint64_t total_violating_windows() const {
    std::uint64_t sum = 0;
    for (const auto& [k, s] : states_) sum += s.violating_windows;
    return sum;
  }
  [[nodiscard]] std::uint64_t packets(StreamKey key) const {
    return states_.at(pack(key)).packets;
  }
  [[nodiscard]] std::uint64_t packets(StreamId id) const {
    return packets(StreamKey{0, id});
  }
  /// Full window positions this placement has seen (the denominator of
  /// violation_rate); 0 until `y` packets arrived.
  [[nodiscard]] std::uint64_t window_positions(StreamKey key) const {
    return positions_of(states_.at(pack(key)));
  }
  /// Fraction of window positions (per placement) that violated the bound.
  [[nodiscard]] double violation_rate(StreamKey key) const {
    const auto windows = window_positions(key);
    return windows ? static_cast<double>(violating_windows(key)) /
                         static_cast<double>(windows)
                   : 0.0;
  }
  [[nodiscard]] double violation_rate(StreamId id) const {
    return violation_rate(StreamKey{0, id});
  }
  [[nodiscard]] bool known(StreamKey key) const {
    return states_.contains(pack(key));
  }

  /// End QoS accounting for a placement while keeping its history in the
  /// aggregates. The session plane retires a stream when its client tears
  /// the session down: the frames purged from the ring afterwards were
  /// abandoned by their own receiver, not missed by the scheduler.
  void retire(StreamKey key) {
    if (const auto it = states_.find(pack(key)); it != states_.end()) {
      it->second.retired = true;
    }
  }

  /// Worst per-placement violation rate across every registered placement —
  /// the "no stream collapsed" headline number of the sweep benches.
  /// Placements that never filled a window contribute 0.
  [[nodiscard]] double max_violation_rate() const {
    double worst = 0.0;
    for (const auto& [k, s] : states_) {
      const std::uint64_t windows = positions_of(s);
      if (windows == 0) continue;
      const double rate = static_cast<double>(s.violating_windows) /
                          static_cast<double>(windows);
      if (rate > worst) worst = rate;
    }
    return worst;
  }

  /// Violating window positions over ALL positions, across every placement —
  /// the population-level QoS number (max_violation_rate can be pinned at
  /// 1.0 by a single unlucky four-packet stream).
  [[nodiscard]] double aggregate_violation_rate() const {
    std::uint64_t windows = 0;
    std::uint64_t violating = 0;
    for (const auto& [k, s] : states_) {
      windows += positions_of(s);
      violating += s.violating_windows;
    }
    return windows ? static_cast<double>(violating) /
                         static_cast<double>(windows)
                   : 0.0;
  }

  /// Placements with at least one violating window position.
  [[nodiscard]] std::uint64_t violating_streams() const {
    std::uint64_t n = 0;
    for (const auto& [k, s] : states_) n += s.violating_windows > 0;
    return n;
  }

  /// Per-scope variants of the three fleet numbers above, filtering to one
  /// placement scope (a tenant, or a board in the cluster plane). The
  /// tenant-isolation gate compares scope_max_violation_rate of the victim
  /// tenant against its flood-free baseline.
  [[nodiscard]] double scope_max_violation_rate(std::uint32_t scope) const {
    double worst = 0.0;
    for (const auto& [k, s] : states_) {
      if ((k >> 32) != scope) continue;
      const std::uint64_t windows = positions_of(s);
      if (windows == 0) continue;
      const double rate = static_cast<double>(s.violating_windows) /
                          static_cast<double>(windows);
      if (rate > worst) worst = rate;
    }
    return worst;
  }

  [[nodiscard]] double scope_aggregate_violation_rate(
      std::uint32_t scope) const {
    std::uint64_t windows = 0;
    std::uint64_t violating = 0;
    for (const auto& [k, s] : states_) {
      if ((k >> 32) != scope) continue;
      windows += positions_of(s);
      violating += s.violating_windows;
    }
    return windows ? static_cast<double>(violating) /
                         static_cast<double>(windows)
                   : 0.0;
  }

  [[nodiscard]] std::uint64_t scope_violating_streams(
      std::uint32_t scope) const {
    std::uint64_t n = 0;
    for (const auto& [k, s] : states_) {
      if ((k >> 32) == scope) n += s.violating_windows > 0;
    }
    return n;
  }

 private:
  struct State {
    WindowConstraint constraint;
    std::deque<bool> window;
    std::int64_t losses_in_window;
    std::uint64_t packets;
    std::uint64_t violating_windows;
    bool retired = false;
  };

  [[nodiscard]] static std::uint64_t pack(StreamKey key) {
    return (static_cast<std::uint64_t>(key.scope) << 32) | key.stream;
  }

  [[nodiscard]] static std::uint64_t positions_of(const State& s) {
    return s.packets >= static_cast<std::uint64_t>(s.constraint.y)
               ? s.packets - static_cast<std::uint64_t>(s.constraint.y) + 1
               : 0;
  }

  std::unordered_map<std::uint64_t, State> states_;
  StreamId next_seq_ = 0;
};

}  // namespace nistream::dwcs
