// Sliding-window constraint checker.
//
// Independent verification of the DWCS service guarantee: for a stream with
// tolerance x/y, every window of y *consecutive* packets may contain at most
// x losses (drops or late transmissions). The monitor watches the outcome
// sequence a scheduler produces and counts windows that break the bound.
//
// It is used two ways:
//  * as the oracle in DWCS property tests (under feasible load the DWCS
//    violation count must stay at/near zero while baselines rack them up);
//  * as the scoring function of the ablate_policy bench.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "dwcs/types.hpp"

namespace nistream::dwcs {

class WindowViolationMonitor {
 public:
  /// Register a stream with its constraint; ids must be registered in order.
  void add_stream(const WindowConstraint& c) {
    streams_.push_back(State{c, {}, 0, 0, 0});
  }

  enum class Outcome : std::uint8_t { kOnTime, kLate, kDropped };

  /// Record the outcome of the next consecutive packet of `id`.
  void record(StreamId id, Outcome o) {
    State& s = streams_[id];
    const bool lost = o != Outcome::kOnTime;
    s.window.push_back(lost);
    s.losses_in_window += lost;
    ++s.packets;
    if (static_cast<std::int64_t>(s.window.size()) > s.constraint.y) {
      s.losses_in_window -= s.window.front();
      s.window.pop_front();
    }
    // Only full windows can violate; count each offending window position.
    if (static_cast<std::int64_t>(s.window.size()) == s.constraint.y &&
        s.losses_in_window > s.constraint.x) {
      ++s.violating_windows;
    }
  }

  [[nodiscard]] std::uint64_t violating_windows(StreamId id) const {
    return streams_[id].violating_windows;
  }
  [[nodiscard]] std::uint64_t total_violating_windows() const {
    std::uint64_t sum = 0;
    for (const auto& s : streams_) sum += s.violating_windows;
    return sum;
  }
  [[nodiscard]] std::uint64_t packets(StreamId id) const {
    return streams_[id].packets;
  }
  /// Fraction of window positions (per stream) that violated the constraint.
  [[nodiscard]] double violation_rate(StreamId id) const {
    const State& s = streams_[id];
    const auto windows =
        s.packets >= static_cast<std::uint64_t>(s.constraint.y)
            ? s.packets - static_cast<std::uint64_t>(s.constraint.y) + 1
            : 0;
    return windows ? static_cast<double>(s.violating_windows) /
                         static_cast<double>(windows)
                   : 0.0;
  }

 private:
  struct State {
    WindowConstraint constraint;
    std::deque<bool> window;
    std::int64_t losses_in_window;
    std::uint64_t packets;
    std::uint64_t violating_windows;
  };
  std::vector<State> streams_;
};

}  // namespace nistream::dwcs
