// Admission control for window-constrained streams.
//
// The paper's scalability story (abstract, §6) needs servers to accept
// stream requests "with a pre-negotiated bound on service degradation" —
// i.e. admission control. For DWCS the natural feasibility measure is the
// *minimum on-time demand*: a stream with tolerance x/y, period T and mean
// frame size C must receive at least (1 - x/y) of its frames on time, so it
// consumes
//     (1 - x/y) * C / T           of link bandwidth, and
//     (1 - x/y) * (D / T)         of scheduler CPU (D = per-frame decision
//                                  plus dispatch time on the NI),
// and a set of streams is admissible while both sums stay under a headroom
// bound (DWCS needs a few percent of slack for its violation-recovery
// feedback — see the PolicyComparison tests).
#pragma once

#include <cstdint>

#include "dwcs/types.hpp"
#include "sim/time.hpp"

namespace nistream::dwcs {

class AdmissionController {
 public:
  struct Request {
    WindowConstraint tolerance{};
    sim::Time period = sim::Time::ms(33);
    std::uint32_t mean_frame_bytes = 1000;
  };

  /// `link_bytes_per_sec`: the NI's output link capacity.
  /// `per_frame_cpu`: scheduling decision + dispatch time on this NI.
  /// `headroom`: admissible fraction of each resource (default 90%).
  AdmissionController(double link_bytes_per_sec, sim::Time per_frame_cpu,
                      double headroom = 0.90)
      : link_bytes_per_sec_{link_bytes_per_sec},
        per_frame_cpu_{per_frame_cpu},
        headroom_{headroom} {}

  /// Fractional on-time service requirement of the stream: (1 - x/y).
  [[nodiscard]] static double ontime_fraction(const WindowConstraint& c) {
    return 1.0 - static_cast<double>(c.x) / static_cast<double>(c.y);
  }

  /// Link-bandwidth share the request needs (fraction of capacity).
  [[nodiscard]] double link_load(const Request& r) const {
    const double bytes_per_sec =
        static_cast<double>(r.mean_frame_bytes) / r.period.to_sec();
    return ontime_fraction(r.tolerance) * bytes_per_sec / link_bytes_per_sec_;
  }

  /// Scheduler-CPU share the request needs. Every arriving frame costs a
  /// decision even if it is then dropped, so the CPU term uses the full
  /// frame rate, not the on-time fraction.
  [[nodiscard]] double cpu_load(const Request& r) const {
    return per_frame_cpu_.to_sec() / r.period.to_sec();
  }

  [[nodiscard]] bool would_admit(const Request& r) const {
    return link_used_ + link_load(r) <= headroom_ &&
           cpu_used_ + cpu_load(r) <= headroom_ &&
           r.tolerance.valid() && r.period > sim::Time::zero();
  }

  /// Try to admit; reserves the request's share on success.
  bool admit(const Request& r) {
    if (!would_admit(r)) {
      ++rejected_;
      return false;
    }
    link_used_ += link_load(r);
    cpu_used_ += cpu_load(r);
    ++admitted_;
    return true;
  }

  /// Release a previously admitted request's reservation (stream teardown).
  void release(const Request& r) {
    link_used_ -= link_load(r);
    cpu_used_ -= cpu_load(r);
    if (link_used_ < 0) link_used_ = 0;
    if (cpu_used_ < 0) cpu_used_ = 0;
    --admitted_;
  }

  [[nodiscard]] double link_utilization() const { return link_used_; }
  [[nodiscard]] double cpu_utilization() const { return cpu_used_; }
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  [[nodiscard]] double headroom() const { return headroom_; }

 private:
  double link_bytes_per_sec_;
  sim::Time per_frame_cpu_;
  double headroom_;
  double link_used_ = 0;
  double cpu_used_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace nistream::dwcs
