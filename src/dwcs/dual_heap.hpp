// The paper's Figure 4(a) dual-heap representation, as a reusable class.
//
// Lived inside repr.cpp's anonymous namespace until the sharded NI work:
// the hierarchical scheduler (hierarchical.hpp) instantiates one DualHeapRepr
// per simulated NI core, so the class (and the named heap comparators it is
// built from) moved here. make_repr() still hands out the single-board
// instance; nothing about the representation itself changed.
//
// The named heap comparators this class is built from (DeadlineIdLess,
// ToleranceLess, FullLess) moved to pifo.hpp with the rank-engine work:
// they are now one-line derivations of the DWCS/EDF rank structs, so each
// ordering is stated exactly once. Charges still flow through the Comparator
// they hold: a comparator built over the scheduler's hook charges the
// modeled arithmetic, one built over the null hook orders silently.
#pragma once

#include <cassert>
#include <optional>

#include "dwcs/comparator.hpp"
#include "dwcs/cost.hpp"
#include "dwcs/heap.hpp"
#include "dwcs/pifo.hpp"
#include "dwcs/repr.hpp"
#include "dwcs/types.hpp"

namespace nistream::dwcs {

/// Figure 4(a): deadline heap + loss-tolerance heap. The deadline heap
/// resolves rule 1; ties at the minimum deadline are broken by the tolerance
/// ordering, which the tolerance heap keeps ready (its top is the globally
/// most tolerance-urgent stream, so the common all-deadlines-equal case is
/// O(1) after the heaps are maintained).
///
/// Tie-break slow path: alongside the two modeled heaps, a third,
/// *uncharged* heap (order_) maintains the full rule-1..5 order, so when the
/// tolerance-heap top does not share the minimum deadline, the winner is its
/// top — O(1), instead of the O(n) scan of the raw deadline heap the model
/// describes. Two-clock discipline (docs/performance.md): when an accounted
/// hook is attached, the modeled O(n) tie scan is still *replayed* so every
/// charged cycle/word of Tables 1-2 stays bit-identical; on null-hook
/// (wall-clock) runs the replay is skipped.
class DualHeapRepr final : public ScheduleRepr {
 public:
  DualHeapRepr(const StreamTable& table, const Comparator& cmp, CostHook& hook,
               SimAddr base)
      : table_{table},
        cmp_{cmp},
        hook_{&hook},
        charged_{hook.accounted()},
        quiet_cmp_{cmp.mode(), null_cost_hook()},
        deadline_heap_{DeadlineIdLess{&table}, hook, base},
        tolerance_heap_{ToleranceLess{&table, &cmp}, hook, base + 0x10000},
        order_{FullLess{&table, &quiet_cmp_}, null_cost_hook(), 0} {}

  // On wall-clock (null hook) runs the tolerance heap is never consulted:
  // pick() goes straight to the full-order shadow heap, whose top is exactly
  // the dual-heap answer (rule 1, tie-broken by the tolerance order — the
  // charged replay below asserts this equivalence on instrumented runs). So
  // its maintenance — the most expensive of the three heaps, a fraction
  // compare per sift level — is skipped outright when nothing is charged.
  void insert(StreamId id) override {
    deadline_heap_.push(id);
    if (charged_) tolerance_heap_.push(id);
    order_.push(id);
  }
  void remove(StreamId id) override {
    deadline_heap_.erase(id);
    if (charged_) tolerance_heap_.erase(id);
    order_.erase(id);
  }
  void update(StreamId id) override {
    deadline_heap_.update(id);
    if (charged_) tolerance_heap_.update(id);
    order_.update(id);
  }
  void reserve(std::size_t n) override {
    deadline_heap_.reserve(n);
    if (charged_) tolerance_heap_.reserve(n);
    order_.reserve(n);
  }

  std::optional<StreamId> pick() override {
    if (!charged_) {
      if (order_.empty()) return std::nullopt;
      return order_.top_unchecked();
    }
    const auto top = deadline_heap_.top();
    if (!top) return std::nullopt;
    // Fast path: if the tolerance heap's top shares the minimum deadline it
    // is the answer outright (it beats every other deadline-tied stream in
    // the tolerance order).
    const sim::Time dmin = table_.view(*top).next_deadline;
    const auto tol_top = tolerance_heap_.top();
    if (tol_top && table_.view(*tol_top).next_deadline == dmin) return tol_top;
    // Slow path: the full-order shadow heap has the deadline-tie winner on
    // top (its order is deadline-major, then tolerance) — O(1).
    const StreamId best = order_.top_unchecked();
    if (charged_) {
      // Replay the modeled tie scan of the raw deadline heap so the charged
      // cost stream (memory words, tolerance compares) is bit-identical to
      // the pre-optimization implementation that Tables 1-2 were calibrated
      // against. Instrumented runs are small-n paper reproductions, so the
      // O(n) here is irrelevant to wall-clock scale.
      StreamId model_best = *top;
      for (std::size_t i = 0; i < deadline_heap_.raw().size(); ++i) {
        deadline_heap_.touch(i);
        const StreamId s = deadline_heap_.raw()[i];
        if (s == model_best) continue;
        if (table_.view(s).next_deadline != dmin) continue;
        if (cmp_.tolerance_precedes(table_.view(s), s, table_.view(model_best),
                                    model_best)) {
          model_best = s;
        }
      }
      assert(model_best == best);
      (void)model_best;
    }
    return best;
  }

  std::optional<StreamId> earliest_deadline() override {
    return deadline_heap_.top();
  }

  const char* name() const override { return "dual-heap"; }

 private:
  const StreamTable& table_;
  const Comparator& cmp_;
  CostHook* hook_;
  bool charged_;  // cached hook.accounted(); false only for the null hook
  Comparator quiet_cmp_;  // same arithmetic mode, null hook (order_ only)
  IndexedHeap<DeadlineIdLess> deadline_heap_;
  IndexedHeap<ToleranceLess> tolerance_heap_;
  IndexedHeap<FullLess> order_;
};

}  // namespace nistream::dwcs
