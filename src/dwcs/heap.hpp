// Handle-based binary min-heap of stream ids with update-key.
//
// Both heaps of Figure 4(a) — the deadline heap and the loss-tolerance heap —
// are instances of this structure with different comparators. Positions are
// tracked per stream id so a key change (window adjustment, deadline advance)
// re-sifts in O(log n) without a search.
//
// The comparator is a template parameter, not a std::function: every compare
// on the sift paths is a direct (typically inlined) call, which is what keeps
// schedule_next wall-clock fast at 10k-100k streams. Use a named comparator
// struct (see repr.cpp) or std::function when type erasure is genuinely
// needed (tests).
//
// Every element the sift path touches is charged as a memory word at the
// heap's simulated base address, so the heap's cache behaviour shows up in
// the Table 1/2 numbers exactly as the descriptor loops do.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "dwcs/cost.hpp"
#include "dwcs/types.hpp"

namespace nistream::dwcs {

template <class Less>
class IndexedHeap {
 public:
  IndexedHeap(Less less, CostHook& hook, SimAddr base_addr)
      : less_{std::move(less)},
        hook_{&hook},
        charged_{hook.accounted()},
        base_{base_addr} {}

  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool contains(StreamId id) const {
    return id < pos_.size() && pos_[id] >= 0;
  }

  /// Pre-size the backing arrays for `n` streams so the growth phase of a
  /// large run never reallocates mid-decision.
  void reserve(std::size_t n) {
    data_.reserve(n);
    if (pos_.size() < n) pos_.resize(n, -1);
  }

  void push(StreamId id) {
    assert(!contains(id));
    if (id >= pos_.size()) pos_.resize(id + 1, -1);
    data_.push_back(id);
    pos_[id] = static_cast<std::int32_t>(data_.size() - 1);
    touch(data_.size() - 1);
    sift_up(data_.size() - 1);
  }

  void erase(StreamId id) {
    assert(contains(id));
    const auto i = static_cast<std::size_t>(pos_[id]);
    swap_at(i, data_.size() - 1);
    data_.pop_back();
    pos_[id] = -1;
    if (i < data_.size()) {
      if (!sift_up(i)) sift_down(i);
    }
  }

  /// Re-establish heap order after `id`'s key changed.
  void update(StreamId id) {
    assert(contains(id));
    const auto i = static_cast<std::size_t>(pos_[id]);
    if (!sift_up(i)) sift_down(i);
  }

  [[nodiscard]] std::optional<StreamId> top() const {
    if (data_.empty()) return std::nullopt;
    touch(0);
    return data_[0];
  }

  /// top() for callers that already know the heap is non-empty; skips the
  /// optional wrapper on the hot path. Precondition: !empty().
  [[nodiscard]] StreamId top_unchecked() const {
    assert(!data_.empty());
    touch(0);
    return data_[0];
  }

  /// Raw level-order contents (used by the dual-heap tie collection; the
  /// caller charges its own traversal costs via less_/touch during compares).
  [[nodiscard]] const std::vector<StreamId>& raw() const { return data_; }

  /// Charge one heap-entry access (exposed for traversals done by callers).
  /// The null hook discards charges, so the virtual call is skipped outright
  /// via the cached `charged_` flag — on wall-clock runs the sift paths make
  /// zero virtual calls.
  void touch(std::size_t idx) const {
    if (charged_) hook_->mem(base_ + static_cast<SimAddr>(idx) * 8);
  }

 private:
  // Both sifts move a hole instead of swapping at every level: the moving
  // element is held in a register and written (with its pos_ entry) exactly
  // once at its final position, so each level costs one data store and one
  // pos_ store instead of a full swap plus two pos_ updates. The charged
  // access stream is unchanged — the same touch() pairs fire at the same
  // points the swap-based implementation charged them, and the compare
  // sequence is value-identical (data_[i] held the moving element at each
  // level in the old code; `moving` holds it here).

  bool sift_up(std::size_t i) {
    const StreamId moving = data_[i];
    bool moved = false;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      touch(i);
      touch(parent);
      if (!less_(moving, data_[parent])) break;
      touch(i);  // modeled swap traffic (was swap_at)
      touch(parent);
      data_[i] = data_[parent];
      pos_[data_[i]] = static_cast<std::int32_t>(i);
      i = parent;
      moved = true;
    }
    if (moved) {
      data_[i] = moving;
      pos_[moving] = static_cast<std::int32_t>(i);
    }
    return moved;
  }

  void sift_down(std::size_t i) {
    const StreamId moving = data_[i];
    bool moved = false;
    for (;;) {
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      std::size_t best = i;
      StreamId best_val = moving;
      touch(i);
      if (l < data_.size()) {
        touch(l);
        if (less_(data_[l], best_val)) {
          best = l;
          best_val = data_[l];
        }
      }
      if (r < data_.size()) {
        touch(r);
        if (less_(data_[r], best_val)) {
          best = r;
          best_val = data_[r];
        }
      }
      if (best == i) break;
      touch(i);  // modeled swap traffic (was swap_at)
      touch(best);
      data_[i] = best_val;
      pos_[best_val] = static_cast<std::int32_t>(i);
      i = best;
      moved = true;
    }
    if (moved) {
      data_[i] = moving;
      pos_[moving] = static_cast<std::int32_t>(i);
    }
  }

  void swap_at(std::size_t a, std::size_t b) {
    if (a == b) return;
    touch(a);
    touch(b);
    std::swap(data_[a], data_[b]);
    pos_[data_[a]] = static_cast<std::int32_t>(a);
    pos_[data_[b]] = static_cast<std::int32_t>(b);
  }

  Less less_;
  CostHook* hook_;
  bool charged_;
  SimAddr base_;
  std::vector<StreamId> data_;
  std::vector<std::int32_t> pos_;
};

}  // namespace nistream::dwcs
