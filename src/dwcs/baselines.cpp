#include "dwcs/baselines.hpp"

#include <cassert>

namespace nistream::dwcs {

StreamId BaselineScheduler::create_stream(const StreamParams& params,
                                          sim::Time now) {
  const auto id = static_cast<StreamId>(streams_.size());
  StreamState s;
  s.params = params;
  s.next_deadline = now + params.period;
  s.ring = std::make_unique<FrameRing>(
      ring_capacity_, DescriptorResidency::kPinnedMemory,
      0x0300'0000 + static_cast<SimAddr>(id) * 0x10000, null_cost_hook());
  streams_.push_back(std::move(s));
  return id;
}

bool BaselineScheduler::enqueue(StreamId id, const FrameDescriptor& frame,
                                sim::Time now) {
  assert(id < streams_.size());
  StreamState& s = streams_[id];
  const bool was_empty = s.ring->empty();
  if (!s.ring->push(frame)) return false;
  ++s.stats.enqueued;
  if (was_empty && s.next_deadline < now) {
    s.next_deadline = now + s.params.period;  // restart after idle
  }
  return true;
}

void BaselineScheduler::drop_late_lossy(sim::Time now) {
  for (auto& s : streams_) {
    if (!s.params.lossy) continue;
    while (!s.ring->empty() && s.next_deadline < now) {
      s.ring->pop();
      ++s.stats.dropped;
      s.next_deadline += s.params.period;
    }
  }
}

std::optional<Dispatch> BaselineScheduler::schedule_next(sim::Time now) {
  drop_late_lossy(now);
  const auto sid = pick(now);
  if (!sid) return std::nullopt;
  StreamState& s = streams_[*sid];
  const auto head = s.ring->front();
  assert(head.has_value());
  s.ring->pop();

  Dispatch d;
  d.stream = *sid;
  d.frame = *head;
  d.deadline = s.next_deadline;
  d.late = s.next_deadline < now;
  if (d.late) {
    ++s.stats.serviced_late;
  } else {
    ++s.stats.serviced_on_time;
  }
  s.stats.bytes_sent += head->bytes;
  s.next_deadline += s.params.period;
  return d;
}

std::optional<StreamId> EdfScheduler::pick(sim::Time) {
  std::optional<StreamId> best;
  for (StreamId i = 0; i < streams().size(); ++i) {
    const auto& s = streams()[i];
    if (s.ring->empty()) continue;
    if (!best || s.next_deadline < streams()[*best].next_deadline) best = i;
  }
  return best;
}

std::optional<StreamId> StaticPriorityScheduler::pick(sim::Time) {
  for (StreamId i = 0; i < streams().size(); ++i) {
    if (!streams()[i].ring->empty()) return i;
  }
  return std::nullopt;
}

std::optional<StreamId> RoundRobinScheduler::pick(sim::Time) {
  const auto n = static_cast<StreamId>(streams().size());
  if (n == 0) return std::nullopt;
  for (StreamId k = 0; k < n; ++k) {
    const StreamId i = static_cast<StreamId>((cursor_ + k) % n);
    if (!streams()[i].ring->empty()) {
      cursor_ = static_cast<StreamId>((i + 1) % n);
      return i;
    }
  }
  return std::nullopt;
}

}  // namespace nistream::dwcs
