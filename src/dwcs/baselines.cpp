#include "dwcs/baselines.hpp"

#include <cassert>

namespace nistream::dwcs {

// The StreamTable base stores only the address of views_, valid before the
// member is constructed; no element is read until streams exist.
BaselineScheduler::BaselineScheduler(std::size_t ring_capacity)
    : StreamTable{views_},
      ring_capacity_{ring_capacity},
      comparator_{ArithMode::kFixedPoint, null_cost_hook()} {}

BaselineScheduler::BaselineScheduler(PolicyKind policy,
                                     std::size_t ring_capacity)
    : StreamTable{views_},
      ring_capacity_{ring_capacity},
      comparator_{ArithMode::kFixedPoint, null_cost_hook()},
      repr_{make_repr(ReprKind::kPifo, *this, comparator_, null_cost_hook(),
                      /*heap_base=*/0x0380'0000, {}, policy)} {}

StreamId BaselineScheduler::create_stream(const StreamParams& params,
                                          sim::Time now) {
  const auto id = static_cast<StreamId>(streams_.size());
  StreamState s;
  s.params = params;
  s.ring = std::make_unique<FrameRing>(
      ring_capacity_, DescriptorResidency::kPinnedMemory,
      0x0300'0000 + static_cast<SimAddr>(id) * 0x10000, null_cost_hook());
  StreamView v;
  v.current = params.tolerance;  // static for baselines: no window adjustments
  v.next_deadline = now + params.period;
  streams_.push_back(std::move(s));
  views_.push_back(v);
  return id;
}

bool BaselineScheduler::enqueue(StreamId id, const FrameDescriptor& frame,
                                sim::Time now) {
  assert(id < streams_.size());
  StreamState& s = streams_[id];
  const bool was_empty = s.ring->empty();
  if (!s.ring->push(frame)) return false;
  ++s.stats.enqueued;
  if (was_empty) {
    StreamView& v = views_[id];
    v.head_enqueued_at = frame.enqueued_at;
    if (v.next_deadline < now) {
      v.next_deadline = now + s.params.period;  // restart after idle
    }
    s.has_backlog = true;
    if (repr_) repr_->insert(id);
  }
  return true;
}

void BaselineScheduler::drop_late_lossy(sim::Time now) {
  for (StreamId id = 0; id < streams_.size(); ++id) {
    StreamState& s = streams_[id];
    if (!s.params.lossy) continue;
    StreamView& v = views_[id];
    bool mutated = false;
    while (!s.ring->empty() && v.next_deadline < now) {
      s.ring->pop();
      ++s.stats.dropped;
      v.next_deadline += s.params.period;
      mutated = true;
    }
    if (!mutated) continue;
    if (s.ring->empty()) {
      s.has_backlog = false;
      if (repr_) repr_->remove(id);
    } else {
      if (const auto head = s.ring->front()) {
        v.head_enqueued_at = head->enqueued_at;
      }
      if (repr_) repr_->update(id);
    }
  }
}

std::optional<StreamId> BaselineScheduler::pick(sim::Time) {
  assert(repr_ && "engine-less baselines must override pick()");
  return repr_->pick();
}

std::optional<Dispatch> BaselineScheduler::schedule_next(sim::Time now) {
  drop_late_lossy(now);
  const auto sid = pick(now);
  if (!sid) return std::nullopt;
  StreamState& s = streams_[*sid];
  StreamView& v = views_[*sid];
  const auto head = s.ring->front();
  assert(head.has_value());
  s.ring->pop();
  if (repr_) repr_->on_charge(*sid);

  Dispatch d;
  d.stream = *sid;
  d.frame = *head;
  d.deadline = v.next_deadline;
  d.late = v.next_deadline < now;
  if (d.late) {
    ++s.stats.serviced_late;
  } else {
    ++s.stats.serviced_on_time;
  }
  s.stats.bytes_sent += head->bytes;
  v.next_deadline += s.params.period;
  if (s.ring->empty()) {
    s.has_backlog = false;
    if (repr_) repr_->remove(*sid);
  } else {
    if (const auto next_head = s.ring->front()) {
      v.head_enqueued_at = next_head->enqueued_at;
    }
    if (repr_) repr_->update(*sid);
  }
  return d;
}

std::optional<StreamId> RoundRobinScheduler::pick(sim::Time) {
  const auto n = static_cast<StreamId>(streams().size());
  if (n == 0) return std::nullopt;
  for (StreamId k = 0; k < n; ++k) {
    const StreamId i = static_cast<StreamId>((cursor_ + k) % n);
    if (!streams()[i].ring->empty()) {
      cursor_ = static_cast<StreamId>((i + 1) % n);
      return i;
    }
  }
  return std::nullopt;
}

}  // namespace nistream::dwcs
