// The programmable PIFO rank engine (Sivaraman et al., *Programmable Packet
// Scheduling*, PAPERS.md): every scheduling policy is a *rank function* over
// one push-in-first-out queue, not a hand-written representation class.
//
// A policy is a rank struct compiled into the engine at template-
// instantiation time — IndexedHeap is templated on the comparator, so every
// compare on the sift paths is a direct (typically inlined) call on the
// policy, exactly like the named DWCS comparators it generalizes:
//
//   struct MyRank {
//     static constexpr const char* kPifoName = "pifo-mine";
//     static constexpr bool kStateful = false;  // does on_charge move ranks?
//     // Total order over backlogged streams ("a is served before b").
//     // MUST break final ties by stream id, or pick() is not deterministic.
//     bool precedes(const StreamView& a, StreamId ida,
//                   const StreamView& b, StreamId idb) const;
//     void on_insert(StreamId id, const StreamView& v);  // became backlogged
//     void on_charge(StreamId id, const StreamView& v);  // head dispatched
//   };
//
// Four policies ship below: DWCS (precedence rules 1-5, delegating to
// comparator.hpp so charged arithmetic is identical to every other DWCS
// representation), EDF, static priority, and an SCFQ-style WFQ with integer
// virtual finish times. The named heap comparators of the dual-heap world
// (DeadlineIdLess / ToleranceLess / FullLess) are DERIVED from these rank
// structs — the rank functions are the single statement of each order.
//
// Decision identity: PifoRepr<DwcsRank> ranks by the same total order as
// DualHeapRepr's full-order shadow heap, so both pick() the unique minimum
// of the same order over the same set — decision-identical by construction,
// and differentially tested (tests/dwcs/pifo_test.cpp, 1500-round lock-step
// across seeds, flat and inside the hierarchical sharding layer).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "dwcs/comparator.hpp"
#include "dwcs/cost.hpp"
#include "dwcs/heap.hpp"
#include "dwcs/repr.hpp"
#include "dwcs/types.hpp"

namespace nistream::dwcs {

/// DWCS precedence rules 1-5 as a rank policy. Delegates to the Comparator
/// so charged arithmetic (rule-2 fraction compares in the selected
/// ArithMode) flows through the same cost hook as every other DWCS
/// representation.
struct DwcsRank {
  static constexpr const char* kPifoName = "pifo-dwcs";
  static constexpr bool kStateful = false;

  const Comparator* cmp;

  [[nodiscard]] bool precedes(const StreamView& a, StreamId ida,
                              const StreamView& b, StreamId idb) const {
    return cmp->precedes(a, ida, b, idb);
  }
  /// Rules 2-4 + id — the tolerance-domain suborder (Figure 4(a)'s
  /// loss-tolerance heap ranks by exactly this).
  [[nodiscard]] bool tolerance_precedes(const StreamView& a, StreamId ida,
                                        const StreamView& b,
                                        StreamId idb) const {
    return cmp->tolerance_precedes(a, ida, b, idb);
  }
  void on_insert(StreamId, const StreamView&) {}
  void on_charge(StreamId, const StreamView&) {}
};

/// Earliest-deadline-first: rule 1 alone, id tie-break. Uncharged (the
/// deadline compare cost is charged by callers that walk the structures, not
/// by their maintenance — same licence as the Figure 4(a) deadline heap).
struct EdfRank {
  static constexpr const char* kPifoName = "pifo-edf";
  static constexpr bool kStateful = false;

  [[nodiscard]] bool precedes(const StreamView& a, StreamId ida,
                              const StreamView& b, StreamId idb) const {
    if (a.next_deadline != b.next_deadline) {
      return a.next_deadline < b.next_deadline;
    }
    return ida < idb;
  }
  void on_insert(StreamId, const StreamView&) {}
  void on_charge(StreamId, const StreamView&) {}
};

/// Fixed priority by creation order: stream 0 most important.
struct StaticPriorityRank {
  static constexpr const char* kPifoName = "pifo-sp";
  static constexpr bool kStateful = false;

  [[nodiscard]] bool precedes(const StreamView&, StreamId ida,
                              const StreamView&, StreamId idb) const {
    return ida < idb;
  }
  void on_insert(StreamId, const StreamView&) {}
  void on_charge(StreamId, const StreamView&) {}
};

/// Shared WFQ virtual-time ledger. Separate from the rank struct so the
/// hierarchical layer can hand every per-core engine (and its own root
/// winner order) the SAME clock — per-stream finish tags are globally
/// comparable across shards.
struct WfqState {
  std::vector<std::uint64_t> finish;  // per-stream virtual finish tag
  std::uint64_t vtime = 0;            // finish tag of the last served head
};

/// WFQ-style rank: SCFQ (self-clocked fair queueing) virtual finish times.
/// The system virtual clock is the finish tag of the packet last serviced —
/// no real-time fluid reference needed, integers all the way down.
///
/// Weight is the stream's outstanding on-time obligation y'-x' (how many
/// on-time services its current window still requires): a stream allowed 3
/// losses per 8 needs 5 on-time slots per window and weighs 5. Each head
/// costs kScale/weight virtual time, so service converges to
/// weight-proportional shares (asserted in tests/dwcs/pifo_test.cpp).
struct WfqRank {
  static constexpr const char* kPifoName = "pifo-wfq";
  static constexpr bool kStateful = true;
  /// Virtual length of one head. Large so integer division by any sane
  /// weight keeps precision; divisible by small weights exactly.
  static constexpr std::uint64_t kScale = 1u << 20;

  std::shared_ptr<WfqState> state = std::make_shared<WfqState>();

  [[nodiscard]] static std::uint64_t weight(const StreamView& v) {
    const std::int64_t w = v.current.y - v.current.x;
    return w > 0 ? static_cast<std::uint64_t>(w) : 1;
  }

  /// A stream (re)entered the backlog. A flow that lagged behind the clock
  /// resumes at the clock, not at its stale tag — idle time is forfeited,
  /// never banked into a catch-up burst.
  void on_insert(StreamId id, const StreamView& v) {
    auto& st = *state;
    if (id >= st.finish.size()) st.finish.resize(id + 1, 0);
    st.finish[id] = std::max(st.finish[id], st.vtime) + kScale / weight(v);
  }

  /// The head was served: the clock advances to its tag and the stream's
  /// next head finishes one quantum later (back-to-back heads queue at the
  /// flow's own finish tag, which is never behind the clock).
  void on_charge(StreamId id, const StreamView& v) {
    auto& st = *state;
    assert(id < st.finish.size());
    st.vtime = std::max(st.vtime, st.finish[id]);
    st.finish[id] += kScale / weight(v);
  }

  [[nodiscard]] bool precedes(const StreamView&, StreamId ida,
                              const StreamView&, StreamId idb) const {
    const auto& st = *state;
    assert(ida < st.finish.size() && idb < st.finish.size());
    const std::uint64_t fa = st.finish[ida];
    const std::uint64_t fb = st.finish[idb];
    if (fa != fb) return fa < fb;
    return ida < idb;
  }
};

/// Shared tenant-scope ledger of TenantDwcsRank. Separate from the rank
/// struct for the same reason as WfqState: the hierarchical layer hands every
/// per-core engine (and its own root winner order) the SAME ledger, so scope
/// finish tags stay globally comparable across shards.
struct TenantDwcsState {
  /// Per-stream scope assignment; streams beyond the vector default to
  /// `id % TenantDwcsRank::kDefaultScopes` (the session plane's tenant-id
  /// hash can install real assignments via set_scope).
  std::vector<std::uint32_t> scope_of;
  std::vector<std::uint64_t> finish;  // per-scope virtual finish tag
  std::vector<std::uint64_t> weight;  // per-scope share weight; 0 -> 1
  std::uint64_t vtime = 0;            // finish tag of the last served scope

  void set_scope(StreamId id, std::uint32_t scope) {
    if (id >= scope_of.size()) scope_of.resize(id + 1, 0);
    scope_of[id] = scope;
  }
  void set_weight(std::uint32_t scope, std::uint64_t w) {
    if (scope >= weight.size()) weight.resize(scope + 1, 0);
    weight[scope] = w;
  }
};

/// Hybrid rank: WFQ share ACROSS tenant scopes, DWCS precedence WITHIN a
/// scope (the ROADMAP's "tenant-aware scheduling inside DWCS" — an
/// over-admitted tenant degrades itself instead of starving its neighbours,
/// while each tenant's own streams still see full windowed-lossy semantics).
///
/// The order is lexicographic over (scope SCFQ key, DWCS rules 1-5): compare
/// the two streams' scopes by (finish tag, scope index) — a total order over
/// scopes — and only fall through to the DWCS comparator when the scopes are
/// equal. Scope clocking is SCFQ exactly like WfqRank, but the tag belongs
/// to the SCOPE: any service charged to a scope member advances the scope's
/// tag by kScale/weight(scope), so service converges to weight-proportional
/// shares per scope regardless of how many streams each tenant runs.
///
/// STRUCTURAL REQUIREMENT — one scope per engine. Because the tag is shared,
/// charging one stream moves the cross-scope rank of EVERY backlogged member
/// of its scope, and a single PIFO heap only re-sifts the charged stream
/// (the ScheduleRepr contract): the uncharged members keep their stale
/// positions, and a scope head held up by same-scope siblings never sinks —
/// the scope monopolizes the top. Tenant-DWCS is therefore inherently a PIFO
/// TREE (Sivaraman et al.: root PIFO ranks scopes, one leaf engine per
/// scope), which is exactly the hierarchical scheduler's shape: under
/// PolicyKind::kTenantDwcs it shards streams BY SCOPE, so within a core
/// every compare falls through to pure DWCS, and the root entry whose key a
/// charge moves is precisely the one shard the mutation re-sifts.
/// make_repr() builds that engine even when the flat kPifo kind is asked
/// for. A flat PifoRepr<TenantDwcsRank> is sound only while each scope has
/// at most one backlogged stream (then the charged stream IS its scope).
struct TenantDwcsRank {
  static constexpr const char* kPifoName = "pifo-tenant-dwcs";
  static constexpr bool kStateful = true;
  static constexpr std::uint64_t kScale = 1u << 20;
  /// Default scope assignment (id % this) when none was installed — matches
  /// the bench/ingress convention of four tenants a/b/c/d.
  static constexpr std::uint32_t kDefaultScopes = 4;

  const Comparator* cmp;
  std::shared_ptr<TenantDwcsState> state = std::make_shared<TenantDwcsState>();

  [[nodiscard]] std::uint32_t scope(StreamId id) const {
    const auto& st = *state;
    return id < st.scope_of.size() ? st.scope_of[id] : id % kDefaultScopes;
  }
  [[nodiscard]] std::uint64_t weight_of(std::uint32_t scope_idx) const {
    const auto& st = *state;
    const std::uint64_t w =
        scope_idx < st.weight.size() ? st.weight[scope_idx] : 0;
    return w > 0 ? w : 1;
  }

  /// A stream (re)entered the backlog: an idle scope resumes at the clock
  /// (SCFQ — idle time is forfeited, never banked), a busy scope's tag is
  /// already >= the clock and stays put.
  void on_insert(StreamId id, const StreamView&) {
    auto& st = *state;
    const std::uint32_t s = scope(id);
    if (s >= st.finish.size()) st.finish.resize(s + 1, 0);
    st.finish[s] = std::max(st.finish[s], st.vtime);
  }

  /// A scope member was served: the clock advances to the scope's tag and
  /// the scope's next service finishes one weighted quantum later.
  void on_charge(StreamId id, const StreamView&) {
    auto& st = *state;
    const std::uint32_t s = scope(id);
    assert(s < st.finish.size());
    st.vtime = std::max(st.vtime, st.finish[s]);
    st.finish[s] += kScale / weight_of(s);
  }

  [[nodiscard]] bool precedes(const StreamView& a, StreamId ida,
                              const StreamView& b, StreamId idb) const {
    const std::uint32_t sa = scope(ida);
    const std::uint32_t sb = scope(idb);
    if (sa != sb) {
      const auto& st = *state;
      const std::uint64_t fa = sa < st.finish.size() ? st.finish[sa] : st.vtime;
      const std::uint64_t fb = sb < st.finish.size() ? st.finish[sb] : st.vtime;
      if (fa != fb) return fa < fb;
      return sa < sb;  // deterministic scope tie-break
    }
    return cmp->precedes(a, ida, b, idb);  // DWCS inside the scope
  }
};

// ---------------------------------------------------------------------------
// Named heap comparators, derived from the rank structs above. These are the
// orderings the dual-heap world is built from (dual_heap.hpp, repr.cpp,
// hierarchical.cpp); each is a one-line delegation so the rank function is
// stated exactly once.

/// Rule-1 ordering with id tie-break (the Figure 4(a) deadline heap) — the
/// EDF rank. Deliberately uncharged, as in the paper model.
struct DeadlineIdLess {
  const StreamTable* table;
  bool operator()(StreamId a, StreamId b) const {
    return EdfRank{}.precedes(table->view(a), a, table->view(b), b);
  }
};

/// Tolerance-domain ordering (rules 2-4 + id), charged through `cmp` — the
/// DWCS rank's tolerance suborder.
struct ToleranceLess {
  const StreamTable* table;
  const Comparator* cmp;
  bool operator()(StreamId a, StreamId b) const {
    return DwcsRank{cmp}.tolerance_precedes(table->view(a), a, table->view(b),
                                            b);
  }
};

/// Full precedence (rules 1-5), charged through `cmp` — the DWCS rank.
struct FullLess {
  const StreamTable* table;
  const Comparator* cmp;
  bool operator()(StreamId a, StreamId b) const {
    return DwcsRank{cmp}.precedes(table->view(a), a, table->view(b), b);
  }
};

/// IndexedHeap comparator over any rank policy: two dense view() loads plus
/// one direct policy call per compare, same shape as the named comparators.
template <class Policy>
struct RankLess {
  const StreamTable* table;
  const Policy* policy;
  bool operator()(StreamId a, StreamId b) const {
    return policy->precedes(table->view(a), a, table->view(b), b);
  }
};

/// The engine: one heap under the policy's rank order answers pick(); a
/// second heap under the rule-1+id order answers earliest_deadline() so the
/// scheduler's late-packet machinery works under ANY rank policy (late
/// processing is an analysis-layer concern, not a policy concern — §3.1.1's
/// decoupling of scheduling analysis from schedule representation).
///
/// Simulated memory layout matches SingleHeapRepr exactly (rank heap at
/// `base`, deadline heap at `base + 0x10000`), so PifoRepr<DwcsRank> IS the
/// historical single-heap representation charge-for-charge; make_repr hands
/// it out under the "single-heap" name.
template <class Policy>
class PifoRepr final : public ScheduleRepr {
 public:
  PifoRepr(const StreamTable& table, Policy policy, CostHook& hook,
           SimAddr base, const char* name = Policy::kPifoName)
      : table_{table},
        policy_{std::move(policy)},
        name_{name},
        rank_heap_{RankLess<Policy>{&table, &policy_}, hook, base},
        deadline_heap_{DeadlineIdLess{&table}, hook, base + 0x10000} {}

  void insert(StreamId id) override {
    policy_.on_insert(id, table_.view(id));
    rank_heap_.push(id);
    deadline_heap_.push(id);
  }
  void remove(StreamId id) override {
    rank_heap_.erase(id);
    deadline_heap_.erase(id);
  }
  void update(StreamId id) override {
    rank_heap_.update(id);
    deadline_heap_.update(id);
  }
  void reserve(std::size_t n) override {
    rank_heap_.reserve(n);
    deadline_heap_.reserve(n);
  }
  void on_charge(StreamId id) override {
    policy_.on_charge(id, table_.view(id));
    // No re-sift: the ScheduleRepr contract has the caller update()/remove()
    // the charged stream before the next query.
  }

  std::optional<StreamId> pick() override { return rank_heap_.top(); }
  std::optional<StreamId> earliest_deadline() override {
    return deadline_heap_.top();
  }
  const char* name() const override { return name_; }

  [[nodiscard]] const Policy& policy() const { return policy_; }

 private:
  const StreamTable& table_;
  Policy policy_;  // before rank_heap_: its comparator captures &policy_
  const char* name_;
  IndexedHeap<RankLess<Policy>> rank_heap_;
  IndexedHeap<DeadlineIdLess> deadline_heap_;
};

}  // namespace nistream::dwcs
