// Core types of the DWCS (Dynamic Window-Constrained Scheduling) library.
//
// DWCS (West & Schwan; used by the paper as its NI-resident media scheduler)
// schedules packet streams under two per-stream attributes (§3.1.2):
//  * Deadline — the latest time the head packet may commence service;
//    consecutive packets' deadlines are offset by a fixed request period.
//  * Loss-tolerance x/y — in every window of y consecutive packets, at most
//    x may be lost or transmitted late.
#pragma once

#include <cstdint>
#include <limits>

#include "mpeg/frame.hpp"
#include "sim/time.hpp"

namespace nistream::dwcs {

using StreamId = std::uint32_t;
inline constexpr StreamId kInvalidStream = std::numeric_limits<StreamId>::max();

/// Simulated address (see hw::MemoryPool); the scheduler passes these to the
/// cost hook so the cache model can key on them.
using SimAddr = std::uint64_t;

/// A loss-tolerance window constraint: x losses permitted per y consecutive
/// packets. (x=0 means no losses tolerated; x=y means pure best-effort.)
struct WindowConstraint {
  std::int64_t x = 0;
  std::int64_t y = 1;

  [[nodiscard]] bool valid() const { return y >= 1 && x >= 0 && x <= y; }
  friend bool operator==(const WindowConstraint&,
                         const WindowConstraint&) = default;
};

/// Static per-stream service specification.
struct StreamParams {
  WindowConstraint tolerance{};             // original xi/yi
  sim::Time period = sim::Time::ms(33);     // Ti: deadline spacing
  /// Lossy streams drop late packets without transmitting them (saving
  /// bandwidth); loss-intolerant streams transmit them late.
  bool lossy = true;
};

/// Descriptor of one queued frame (the scheduler's unit of work). Frames
/// themselves live once in NI memory; descriptors carry their address.
struct FrameDescriptor {
  std::uint64_t frame_id = 0;
  std::uint32_t bytes = 0;
  mpeg::FrameType type = mpeg::FrameType::kI;
  sim::Time enqueued_at;    // entry into scheduler queues (queuing delay t0)
  SimAddr frame_addr = 0;   // frame body location in card memory
};

/// What the scheduler decided to do on one cycle.
struct Dispatch {
  StreamId stream = kInvalidStream;
  FrameDescriptor frame{};
  sim::Time deadline;   // the deadline this packet was held to
  bool late = false;    // true: past deadline (transmitted late, not dropped)
};

/// Per-stream service accounting.
struct StreamStats {
  std::uint64_t enqueued = 0;
  std::uint64_t serviced_on_time = 0;
  std::uint64_t serviced_late = 0;   // loss-intolerant streams only
  std::uint64_t dropped = 0;         // lossy streams' late packets
  std::uint64_t violations = 0;      // window-constraint violations (x' was 0)
  std::uint64_t bytes_sent = 0;

  [[nodiscard]] std::uint64_t losses() const {
    return serviced_late + dropped;
  }
};

/// Dynamic per-stream scheduling state, exposed read-only for representations
/// and tests. Deliberately lean — 32 bytes, two views per cache line: these
/// are the only words a heap compare loads, so representation scaling is
/// bounded by how many of them stay cache-resident. Static attributes (the
/// original window constraint, in StreamParams) and scheduler bookkeeping
/// (backlog flags) live with the scheduler, not here.
struct StreamView {
  sim::Time next_deadline;
  WindowConstraint current;
  sim::Time head_enqueued_at;  // arrival of the head packet (FCFS orderings)
};
static_assert(sizeof(StreamView) == 32,
              "StreamView is sized for two views per cache line; keep cold "
              "state out of it");

}  // namespace nistream::dwcs
