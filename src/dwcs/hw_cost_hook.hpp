// Bridge from the scheduler's cost instrumentation to a hardware CPU model.
//
// Maps every dwcs::CostHook callback onto hw::CpuModel charges under a chosen
// arithmetic cost table. This is the glue that makes Tables 1-3 measurable:
// the real DWCS code runs, and the target processor's cycle counter advances
// as if it had executed there. The DVCM scheduler extension also uses it so
// the NI scheduler task's CPU consumption in Figures 9-10 comes from the
// same calibrated model as the microbenchmarks.
#pragma once

#include "dwcs/cost.hpp"
#include "hw/calibration.hpp"
#include "hw/cpu.hpp"

namespace nistream::dwcs {

class CpuModelCostHook final : public CostHook {
 public:
  /// `int_costs` price the integer/fixed-point path; `float_costs` price the
  /// floating-point path (software-emulated or FPU, per the target machine).
  CpuModelCostHook(hw::CpuModel& cpu, const hw::ArithCosts& int_costs,
                   const hw::ArithCosts& float_costs)
      : cpu_{&cpu}, int_costs_{int_costs}, float_costs_{float_costs} {}

  void arith_int(Op op, int n) override {
    cpu_->charge_arith(int_costs_, convert(op), n);
  }
  void arith_float(Op op, int n) override {
    cpu_->charge_arith(float_costs_, convert(op), n);
  }
  void mem(SimAddr addr) override { cpu_->mem_access(addr); }
  void reg() override { cpu_->reg_access(); }
  void cycles(std::int64_t n) override { cpu_->charge(n); }

 private:
  static hw::ArithOp convert(Op op) {
    switch (op) {
      case Op::kAdd: return hw::ArithOp::kAdd;
      case Op::kMul: return hw::ArithOp::kMul;
      case Op::kDiv: return hw::ArithOp::kDiv;
      case Op::kCmp: return hw::ArithOp::kCmp;
    }
    return hw::ArithOp::kAdd;
  }

  hw::CpuModel* cpu_;
  hw::ArithCosts int_costs_;
  hw::ArithCosts float_costs_;
};

/// The cost tables a given (machine, arithmetic mode) pair implies.
[[nodiscard]] inline CpuModelCostHook make_i960_hook(hw::CpuModel& cpu,
                                                     const hw::Calibration& cal) {
  return CpuModelCostHook{cpu, cal.ni_int, cal.ni_softfp};
}
[[nodiscard]] inline CpuModelCostHook make_host_hook(hw::CpuModel& cpu,
                                                     const hw::Calibration& cal) {
  return CpuModelCostHook{cpu, cal.host_int, cal.host_fpu};
}

}  // namespace nistream::dwcs
