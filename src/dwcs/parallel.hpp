// Simulated-parallel shard execution: replay a sharded scheduler's cycle
// trace on an N-core WindKernel.
//
// The serial bench executes every shard mutation on the one host core running
// the loop, so the hierarchical scheduler's N-fold parallel mutation capacity
// existed only in prose (docs/performance.md, "Sharded NI scheduling",
// reading 3). This executor makes it measurable in SIMULATED time:
//
//   * N equal-priority rtos:: tasks — one per shard — run on an N-core
//     WindKernel (its SMP CpuScheduler genuinely runs N ready tasks in
//     parallel). Each task drains a per-shard FIFO of work items, consuming
//     each item's shard-engine cycles on its own core.
//   * ONE arbiter task is the only serialization point: any mutation whose
//     root-arbiter work is nonzero (winner recompute + root sifts +
//     interconnect hop) forwards that portion to the arbiter's queue after
//     its shard work completes, preserving the per-mutation shard-then-root
//     ordering of the serial scheduler.
//
// The work items come from HierarchicalScheduler::set_exec_trace: the
// scheduler still executes every decision EAGERLY and SERIALLY on the host
// (so the dispatch sequence is bit-identical to serial execution — gated by
// the FNV --identity hash, not assumed), while a ShardCycleMeter prices each
// mutation and this class replays those prices as parallel simulated work.
// Only TIME is modeled in parallel; STATE stays serial. That split is sound
// because the rank order is total: the decision sequence does not depend on
// which core finishes its sift first.
//
// Driving protocol (bench/scale_sweep.cpp, tests/dwcs/parallel_test.cpp):
//   1. Build the scheduler over a ShardCycleMeter hook; do bulk setup.
//   2. Attach: hier.set_exec_trace(&exec, &meter)  (AFTER setup).
//   3. Per decision: t0 = meter.total(); sched.schedule_next(now);
//      exec.finish_decision(shard_of(dispatched), meter.total() - t0) — the
//      remainder beyond the traced mutations (decision overhead, ring ops,
//      window adjustments, stream-state touches) bills the dispatched
//      stream's shard: on a real board that service work runs on the core
//      that owns the stream.
//   4. co_await exec.fence() at round boundaries — a decision round has a
//      well-defined simulated end time once every posted item is consumed.
//   5. exec.shutdown() once, then run the engine until idle, before
//      destroying the executor.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "dwcs/shard_exec.hpp"
#include "rtos/wind.hpp"
#include "sim/coro.hpp"

namespace nistream::dwcs {

class ParallelShardExecutor final : public ShardExecTrace {
 public:
  /// Spawns `shards` shard tasks plus one arbiter task, all at `priority`
  /// (equal priority: shard work has no urgency order among peers; the
  /// arbiter competes equally and stays responsive because shard tasks block
  /// on empty queues — run-to-block, not run-to-quantum).
  ParallelShardExecutor(rtos::WindKernel& kernel, std::uint32_t shards,
                        int priority = 100);
  ~ParallelShardExecutor() { assert(shut_down_ && outstanding_ == 0); }
  ParallelShardExecutor(const ParallelShardExecutor&) = delete;
  ParallelShardExecutor& operator=(const ParallelShardExecutor&) = delete;

  // ShardExecTrace: one mutation's priced work, posted to shard `shard`.
  void mutation(std::uint32_t shard, StreamId id, std::int64_t shard_cycles,
                std::int64_t root_cycles) override;

  /// End of one scheduling decision. `total_delta` is the meter's total cycle
  /// delta across the whole schedule_next call; the remainder beyond the
  /// traced mutations is posted to `shard` (the dispatched stream's owner) as
  /// one more shard-work item. Resets the per-decision traced accumulator.
  void finish_decision(std::uint32_t shard, std::int64_t total_delta);

  /// Awaitable: resumes (via the engine, at the completing instant) once
  /// every posted work item has been fully consumed. Ready immediately when
  /// nothing is outstanding.
  struct Fence {
    ParallelShardExecutor& ex;
    [[nodiscard]] bool await_ready() const noexcept {
      return ex.outstanding_ == 0;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ex.idle_.wait().await_suspend(h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Fence fence() { return Fence{*this}; }

  /// Post a poison pill to every task so each exits its drain loop and its
  /// coroutine frame self-destroys. Call exactly once, with nothing
  /// outstanding (fence first), then run the engine until idle before
  /// destroying the executor.
  void shutdown();

  [[nodiscard]] std::uint32_t shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] std::uint64_t outstanding() const { return outstanding_; }
  [[nodiscard]] std::uint64_t total_items() const { return seq_; }
  [[nodiscard]] std::size_t max_queue_depth(std::uint32_t s) const {
    return shards_[s]->max_depth;
  }
  /// Simulated CPU time each shard task / the arbiter task consumed; the
  /// arbiter share quantifies "the root is the only serialization point".
  [[nodiscard]] sim::Time shard_cpu_time(std::uint32_t s) const {
    return shards_[s]->task->cpu_time();
  }
  [[nodiscard]] sim::Time arbiter_cpu_time() const {
    return arbiter_task_->cpu_time();
  }

  /// Record the global sequence number of every item as it is CONSUMED, per
  /// shard (tests assert same-shard FIFO: a burst of mutations landing on one
  /// shard back-to-back must drain in posting order). Off by default — the
  /// log grows per mutation, which the bench does not want.
  void set_record_order(bool on) { record_order_ = on; }
  [[nodiscard]] const std::vector<std::uint64_t>& consumed_order(
      std::uint32_t s) const {
    return shards_[s]->consumed;
  }

 private:
  struct Item {
    std::int64_t shard_cycles = 0;
    std::int64_t root_cycles = 0;
    std::uint64_t seq = 0;
    bool poison = false;
  };
  struct ShardState {
    explicit ShardState(sim::Engine& eng) : sem{eng, 0} {}
    sim::Semaphore sem;   // counts queued items
    std::deque<Item> queue;
    rtos::Task* task = nullptr;
    std::vector<std::uint64_t> consumed;  // seq log (record_order_ only)
    std::size_t max_depth = 0;
  };

  sim::Coro shard_loop(std::uint32_t s);
  sim::Coro arbiter_loop();

  void post(std::uint32_t shard, Item item);
  void complete() {
    assert(outstanding_ > 0);
    if (--outstanding_ == 0) idle_.signal();
  }

  rtos::WindKernel& kernel_;
  sim::Condition idle_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::deque<Item> root_queue_;
  sim::Semaphore root_sem_;
  rtos::Task* arbiter_task_ = nullptr;
  std::uint64_t outstanding_ = 0;  // items posted and not yet fully consumed
  std::uint64_t seq_ = 0;          // global posting sequence
  std::int64_t traced_ = 0;        // cycles traced since last finish_decision
  bool record_order_ = false;
  bool shut_down_ = false;
};

}  // namespace nistream::dwcs
