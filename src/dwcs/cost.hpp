// Cost-instrumentation hook.
//
// The embedded microbenchmarks (Tables 1-3) charge every arithmetic
// operation, memory word access and register access the scheduler performs
// to a target CPU model. The scheduler code calls this interface at each
// such point; the default hook does nothing (zero-cost scheduling, used by
// the pure-algorithm tests), and bench/microbench.hpp maps it onto
// hw::CpuModel with the i960 cost tables.
#pragma once

#include <cstdint>

#include "dwcs/types.hpp"

namespace nistream::dwcs {

enum class Op : std::uint8_t { kAdd, kMul, kDiv, kCmp };

class CostHook {
 public:
  virtual ~CostHook() = default;

  /// Integer ALU operation (fixed-point arithmetic path).
  virtual void arith_int(Op /*op*/, int /*n*/ = 1) {}
  /// Floating-point operation (software-FP or FPU path — the hook's cost
  /// table decides which).
  virtual void arith_float(Op /*op*/, int /*n*/ = 1) {}
  /// One data word accessed at a simulated address (through the d-cache).
  virtual void mem(SimAddr /*addr*/) {}
  /// One memory-mapped "hardware queue" register access (on-chip, uncached).
  virtual void reg() {}
  /// Fixed control-flow overhead in CPU cycles (call/loop/branch costs).
  virtual void cycles(std::int64_t /*n*/) {}

  /// False only for the shared null hook: charges are discarded, so charge
  /// replays that exist solely to keep the simulated cost model bit-identical
  /// (see DualHeapRepr::pick) can be skipped on pure wall-clock runs.
  [[nodiscard]] virtual bool accounted() const { return true; }
};

namespace detail {
class NullCostHook final : public CostHook {
 public:
  [[nodiscard]] bool accounted() const override { return false; }
};
}  // namespace detail

/// Shared do-nothing hook for un-instrumented use.
[[nodiscard]] inline CostHook& null_cost_hook() {
  static detail::NullCostHook hook;
  return hook;
}

/// How the scheduler computes its fractional comparisons (§4.2):
enum class ArithMode {
  kFixedPoint,   // exact fractions, integer cross-multiplication
  kSoftFloat,    // software-emulated IEEE binary32 (VxWorks FP library)
  kNativeFloat,  // hardware FPU double (host-based scheduler)
};

/// Where frame descriptors live (§4.2.1, Table 2 vs Table 3):
enum class DescriptorResidency {
  kPinnedMemory,   // pinned card RAM, cacheable
  kHardwareQueue,  // the 1004 memory-mapped 32-bit registers, uncached
};

}  // namespace nistream::dwcs
