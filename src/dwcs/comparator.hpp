// The DWCS precedence rules.
//
// DWCS picks the stream with "lowest priority value" among the head packets
// of all backlogged streams, by the pairwise rules of West & Schwan
// (ICMCS'99), restated here:
//
//   1. Earliest deadline first.
//   2. Equal deadlines: lowest current window-constraint W' = x'/y' first.
//   3. Equal deadlines and zero window-constraints: highest window-
//      denominator y' first. (Among streams that can afford no more losses,
//      a larger outstanding window is the harder promise to keep — and each
//      violation increments y', raising urgency further.)
//   4. Equal deadlines and equal non-zero window-constraints: lowest
//      window-numerator x' first (the tighter window in absolute terms).
//   5. All equal: lowest stream id (stable order).
//
// Rule 2's fractional comparison is where the arithmetic-mode ablation
// (Table 1/2, fixed-point vs software FP) lives: the fixed-point mode
// compares x1*y2 <=> x2*y1 exactly with two integer multiplies; the float
// modes perform two divisions and a compare in (soft or native) floating
// point. Costs are charged per operation through the CostHook.
#pragma once

#include "dwcs/cost.hpp"
#include "dwcs/types.hpp"
#include "fixedpt/fraction.hpp"
#include "fixedpt/softfloat.hpp"

namespace nistream::dwcs {

class Comparator {
 public:
  Comparator(ArithMode mode, CostHook& hook)
      : mode_{mode}, hook_{&hook}, charged_{hook.accounted()} {}

  [[nodiscard]] ArithMode mode() const { return mode_; }

  /// Three-way compare of loss-tolerances (precedence rule 2): negative when
  /// `a` is the lower (more urgent) tolerance.
  [[nodiscard]] int cmp_tolerance(const WindowConstraint& a,
                                  const WindowConstraint& b) const {
    switch (mode_) {
      case ArithMode::kFixedPoint: {
        // Exact: x_a * y_b <=> x_b * y_a.
        if (charged_) {
          hook_->arith_int(Op::kMul, 2);
          hook_->arith_int(Op::kCmp, 1);
        }
        const auto ord = order(fixedpt::Fraction{a.x, a.y},
                               fixedpt::Fraction{b.x, b.y});
        return ord < 0 ? -1 : (ord > 0 ? 1 : 0);
      }
      case ArithMode::kSoftFloat: {
        if (charged_) {
          hook_->arith_float(Op::kDiv, 2);
          hook_->arith_float(Op::kCmp, 1);
        }
        const auto wa = fixedpt::SoftFloat::from_int(static_cast<std::int32_t>(a.x)) /
                        fixedpt::SoftFloat::from_int(static_cast<std::int32_t>(a.y));
        const auto wb = fixedpt::SoftFloat::from_int(static_cast<std::int32_t>(b.x)) /
                        fixedpt::SoftFloat::from_int(static_cast<std::int32_t>(b.y));
        if (wa < wb) return -1;
        if (wb < wa) return 1;
        return 0;
      }
      case ArithMode::kNativeFloat: {
        if (charged_) {
          hook_->arith_float(Op::kDiv, 2);
          hook_->arith_float(Op::kCmp, 1);
        }
        const double wa = static_cast<double>(a.x) / static_cast<double>(a.y);
        const double wb = static_cast<double>(b.x) / static_cast<double>(b.y);
        if (wa < wb) return -1;
        if (wa > wb) return 1;
        return 0;
      }
    }
    return 0;
  }

  /// Tolerance-domain ordering only (rules 2-4 + id): used by the
  /// loss-tolerance heap of the dual-heap representation.
  [[nodiscard]] bool tolerance_precedes(const StreamView& a, StreamId ida,
                                        const StreamView& b, StreamId idb) const {
    const int c = cmp_tolerance(a.current, b.current);
    if (c != 0) return c < 0;
    if (a.current.x == 0 && b.current.x == 0) {
      if (charged_) hook_->arith_int(Op::kCmp, 1);
      if (a.current.y != b.current.y) return a.current.y > b.current.y;  // rule 3
    } else {
      if (charged_) hook_->arith_int(Op::kCmp, 1);
      if (a.current.x != b.current.x) return a.current.x < b.current.x;  // rule 4
    }
    return ida < idb;  // rule 5
  }

  /// Full precedence (rules 1-5): true when `a` must be serviced before `b`.
  [[nodiscard]] bool precedes(const StreamView& a, StreamId ida,
                              const StreamView& b, StreamId idb) const {
    if (charged_) hook_->arith_int(Op::kCmp, 1);  // deadline compare (64-bit)
    if (a.next_deadline != b.next_deadline) {
      return a.next_deadline < b.next_deadline;  // rule 1
    }
    return tolerance_precedes(a, ida, b, idb);
  }

 private:
  ArithMode mode_;
  CostHook* hook_;
  // Cached hook.accounted(): the null hook discards every charge, so guarding
  // with a plain bool removes the virtual dispatch from each compare on
  // wall-clock (uninstrumented) runs without changing any accounted stream.
  bool charged_;
};

}  // namespace nistream::dwcs
