#include "dwcs/parallel.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace nistream::dwcs {

ParallelShardExecutor::ParallelShardExecutor(rtos::WindKernel& kernel,
                                             std::uint32_t shards,
                                             int priority)
    : kernel_{kernel}, idle_{kernel.engine()}, root_sem_{kernel.engine(), 0} {
  const std::uint32_t n = shards == 0 ? 1 : shards;
  shards_.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<ShardState>(kernel.engine()));
    shards_[s]->task = &kernel.spawn("shard" + std::to_string(s), priority);
  }
  arbiter_task_ = &kernel.spawn("arbiter", priority);
  // The loops start eagerly and immediately park on their empty queues;
  // frames self-destroy after the shutdown() poison pill, so the handles can
  // be dropped here.
  for (std::uint32_t s = 0; s < n; ++s) shard_loop(s).detach();
  arbiter_loop().detach();
}

void ParallelShardExecutor::post(std::uint32_t shard, Item item) {
  assert(!shut_down_);
  auto& st = *shards_[shard];
  st.queue.push_back(item);
  st.max_depth = std::max(st.max_depth, st.queue.size());
  ++outstanding_;
  st.sem.release();
}

void ParallelShardExecutor::mutation(std::uint32_t shard, StreamId /*id*/,
                                     std::int64_t shard_cycles,
                                     std::int64_t root_cycles) {
  traced_ += shard_cycles + root_cycles;
  post(shard, Item{shard_cycles, root_cycles, seq_++});
}

void ParallelShardExecutor::finish_decision(std::uint32_t shard,
                                            std::int64_t total_delta) {
  // Whatever the decision charged beyond its traced mutations — decision
  // overhead, ring pops, window adjustments, stream-state touches — is
  // service work on the dispatched stream, so it runs on the owning core.
  const std::int64_t remainder = total_delta - std::exchange(traced_, 0);
  assert(remainder >= 0 && "traced mutations exceed the decision's total");
  if (remainder > 0) post(shard, Item{remainder, 0, seq_++});
}

void ParallelShardExecutor::shutdown() {
  assert(!shut_down_ && outstanding_ == 0);
  shut_down_ = true;
  for (auto& st : shards_) {
    st->queue.push_back(Item{0, 0, 0, /*poison=*/true});
    st->sem.release();
  }
  root_queue_.push_back(Item{0, 0, 0, /*poison=*/true});
  root_sem_.release();
}

sim::Coro ParallelShardExecutor::shard_loop(std::uint32_t s) {
  auto& st = *shards_[s];
  for (;;) {
    co_await st.sem.acquire();
    const Item item = st.queue.front();
    st.queue.pop_front();
    if (item.poison) co_return;
    if (item.shard_cycles > 0) {
      co_await st.task->consume_cycles(item.shard_cycles);
    }
    if (record_order_) st.consumed.push_back(item.seq);
    if (item.root_cycles > 0) {
      // The root portion starts only after the shard portion finished —
      // same intra-mutation ordering as the serial scheduler.
      root_queue_.push_back(item);
      root_sem_.release();
    } else {
      complete();
    }
  }
}

sim::Coro ParallelShardExecutor::arbiter_loop() {
  for (;;) {
    co_await root_sem_.acquire();
    const Item item = root_queue_.front();
    root_queue_.pop_front();
    if (item.poison) co_return;
    if (item.root_cycles > 0) {
      co_await arbiter_task_->consume_cycles(item.root_cycles);
    }
    complete();
  }
}

}  // namespace nistream::dwcs
