#include "dwcs/scheduler.hpp"

#include <cassert>

namespace nistream::dwcs {

DwcsScheduler::DwcsScheduler(Config config, CostHook& hook)
    // The StreamTable base stores only the address of views_, which is valid
    // before the member is constructed; no element is read until streams
    // exist.
    : StreamTable{views_},
      config_{config},
      hook_{&hook},
      charged_{hook.accounted()},
      comparator_{config.arith, hook},
      repr_{make_repr(config.repr, *this, comparator_, hook,
                      /*heap_base=*/0x0100'0000, config.hierarchical,
                      config.policy)} {}

const StreamParams& DwcsScheduler::stream_params(StreamId id) const {
  assert(id < streams_.size());
  return streams_[id].params;
}

const StreamStats& DwcsScheduler::stats(StreamId id) const {
  assert(id < streams_.size());
  return streams_[id].stats;
}

std::size_t DwcsScheduler::backlog(StreamId id) const {
  assert(id < streams_.size());
  return streams_[id].ring->size();
}

StreamId DwcsScheduler::create_stream(const StreamParams& params,
                                      sim::Time now) {
  assert(params.tolerance.valid());
  assert(params.period > sim::Time::zero());
  const auto id = static_cast<StreamId>(streams_.size());
  StreamState s;
  s.params = params;
  StreamView v;
  v.current = params.tolerance;
  v.next_deadline = now + params.period;
  s.ring = &ring_pool_.emplace(config_.ring_capacity, config_.residency,
                               next_ring_base_, *hook_);
  s.state_addr = 0x00F0'0000 + static_cast<SimAddr>(id) * 128;
  next_ring_base_ += 0x10000;  // rings 64 KB apart in simulated memory
  streams_.push_back(std::move(s));
  views_.push_back(v);
  return id;
}

bool DwcsScheduler::enqueue(StreamId id, const FrameDescriptor& frame,
                            sim::Time now) {
  assert(id < streams_.size());
  StreamState& s = streams_[id];
  const bool was_empty = s.ring->empty();
  if (!s.ring->push(frame)) return false;
  ++s.stats.enqueued;
  if (was_empty) {
    StreamView& v = views_[id];
    v.head_enqueued_at = frame.enqueued_at;
    s.has_backlog = true;
    if (config_.reset_deadline_on_idle && v.next_deadline < now) {
      // The stream idled past its grid; restart rather than charging the
      // idle gap as a burst of losses.
      v.next_deadline = now + s.params.period;
    }
    repr_->insert(id);
  }
  return true;
}

void DwcsScheduler::adjust_serviced(StreamView& v,
                                    const WindowConstraint& orig) {
  // Rule (A): on-time service.
  auto& cur = v.current;
  if (charged_) hook_->arith_int(Op::kCmp, 1);
  if (cur.y > cur.x) {
    if (charged_) hook_->arith_int(Op::kAdd, 1);
    --cur.y;
  }
  if (charged_) hook_->arith_int(Op::kCmp, 1);
  if (cur.y == cur.x) {
    cur = orig;  // window complete: y-x on-time services happened
  }
}

void DwcsScheduler::adjust_lost(StreamView& v, const WindowConstraint& orig,
                                StreamStats& stats) {
  // Rule (B): head packet lost or late.
  auto& cur = v.current;
  if (charged_) hook_->arith_int(Op::kCmp, 1);
  if (cur.x > 0) {
    if (charged_) hook_->arith_int(Op::kAdd, 2);
    --cur.x;
    --cur.y;
    if (charged_) hook_->arith_int(Op::kCmp, 1);
    if (cur.y == cur.x) cur = orig;
  } else {
    // Violation: the window constraint is broken. The stream stays at
    // tolerance zero and its denominator grows, which raises its urgency
    // under precedence rule 3 so it recovers service share.
    ++stats.violations;
    if (charged_) hook_->arith_int(Op::kAdd, 1);
    ++cur.y;
  }
}

void DwcsScheduler::touch_stream_state(StreamState& s, int words) {
  if (!charged_) return;  // null hook discards every charge
  for (int i = 0; i < words; ++i) {
    hook_->mem(s.state_addr + static_cast<SimAddr>(i) * 4);
  }
}

void DwcsScheduler::advance_deadline(StreamState& s, StreamView& v,
                                     sim::Time now) {
  if (charged_) {
    hook_->arith_int(Op::kAdd, 1);
    hook_->mem(s.state_addr);  // stream-descriptor deadline field
  }
  if (config_.deadline_from_completion && now > v.next_deadline) {
    v.next_deadline = now + s.params.period;
  } else {
    v.next_deadline += s.params.period;
  }
}

void DwcsScheduler::refresh_head_arrival(StreamState& s, StreamView& v) {
  if (const auto head = s.ring->front()) {
    v.head_enqueued_at = head->enqueued_at;
  }
}

void DwcsScheduler::process_late(sim::Time now) {
  // Walk streams in deadline order; stop at the first stream that is not
  // late (every later one is on time too) or at a late loss-intolerant
  // stream that has already been adjusted (it is about to be serviced late).
  while (const auto sid = repr_->earliest_deadline()) {
    StreamState& s = streams_[*sid];
    StreamView& v = views_[*sid];
    if (charged_) hook_->arith_int(Op::kCmp, 1);
    if (v.next_deadline + config_.lateness_slack >= now) break;
    if (s.params.lossy) {
      // Drop without transmitting — saves the wire bandwidth entirely.
      if (drop_hook_) {
        if (const auto head = s.ring->front_unaccounted()) {
          drop_hook_(*sid, *head);
        }
      }
      s.ring->pop();
      ++s.stats.dropped;
      touch_stream_state(s, kDropStateWords);
      adjust_lost(v, s.params.tolerance, s.stats);
      advance_deadline(s, v, now);
      if (s.ring->empty()) {
        s.has_backlog = false;
        repr_->remove(*sid);
      } else {
        refresh_head_arrival(s, v);
        repr_->update(*sid);
      }
    } else {
      if (!s.head_late_adjusted) {
        adjust_lost(v, s.params.tolerance, s.stats);
        s.head_late_adjusted = true;
        repr_->update(*sid);
      }
      break;  // keeps the earliest deadline: it will be picked this cycle
    }
  }
}

std::optional<Dispatch> DwcsScheduler::schedule_next(sim::Time now) {
  if (charged_) hook_->cycles(config_.decision_overhead_cycles);
  ++decisions_;

  process_late(now);

  // process_late stops at the first late loss-intolerant stream (it keeps
  // the earliest deadline and is about to be serviced late). A late *lossy*
  // stream that ties with it on deadline can still win the tolerance
  // tie-break here — its head must be dropped, never transmitted late.
  std::optional<StreamId> sid;
  for (;;) {
    sid = repr_->pick();
    if (!sid) return std::nullopt;
    StreamState& cand = streams_[*sid];
    StreamView& cv = views_[*sid];
    if (charged_) hook_->arith_int(Op::kCmp, 1);
    if (!cand.params.lossy ||
        cv.next_deadline + config_.lateness_slack >= now) {
      break;
    }
    if (drop_hook_) {
      if (const auto head = cand.ring->front_unaccounted()) {
        drop_hook_(*sid, *head);
      }
    }
    cand.ring->pop();
    ++cand.stats.dropped;
    touch_stream_state(cand, kDropStateWords);
    adjust_lost(cv, cand.params.tolerance, cand.stats);
    advance_deadline(cand, cv, now);
    if (cand.ring->empty()) {
      cand.has_backlog = false;
      repr_->remove(*sid);
    } else {
      refresh_head_arrival(cand, cv);
      repr_->update(*sid);
    }
  }
  StreamState& s = streams_[*sid];
  StreamView& v = views_[*sid];
  const auto head = s.ring->front();
  assert(head.has_value());
  s.ring->pop();
  // The winner is charged one service the moment its head leaves the ring:
  // stateful rank policies (WFQ virtual time) advance here. The repr
  // update()/remove() at the end of this cycle re-sifts, per the on_charge
  // contract. Dropped heads (process_late, the loop above) are never
  // charged — a drop spends no service.
  repr_->on_charge(*sid);

  Dispatch d;
  d.stream = *sid;
  d.frame = *head;
  d.deadline = v.next_deadline;
  if (charged_) hook_->arith_int(Op::kCmp, 1);
  d.late = v.next_deadline + config_.lateness_slack < now;

  touch_stream_state(s, kServiceStateWords);
  if (d.late) {
    // Late transmission on a loss-intolerant stream: the loss adjustment
    // already happened in process_late.
    assert(!s.params.lossy);
    ++s.stats.serviced_late;
    s.head_late_adjusted = false;
  } else {
    ++s.stats.serviced_on_time;
    adjust_serviced(v, s.params.tolerance);
  }
  s.stats.bytes_sent += head->bytes;
  advance_deadline(s, v, now);

  if (s.ring->empty()) {
    s.has_backlog = false;
    repr_->remove(*sid);
  } else {
    refresh_head_arrival(s, v);
    repr_->update(*sid);
  }
  return d;
}

std::size_t DwcsScheduler::purge_stream(StreamId id) {
  assert(id < streams_.size());
  StreamState& s = streams_[id];
  std::size_t purged = 0;
  while (const auto head = s.ring->front_unaccounted()) {
    if (drop_hook_) drop_hook_(id, *head);
    s.ring->pop_unaccounted();
    ++purged;
  }
  s.stats.dropped += purged;
  if (s.has_backlog) {
    s.has_backlog = false;
    repr_->remove(id);
  }
  s.head_late_adjusted = false;
  return purged;
}

std::uint64_t DwcsScheduler::total_violations() const {
  std::uint64_t sum = 0;
  for (const auto& s : streams_) sum += s.stats.violations;
  return sum;
}

}  // namespace nistream::dwcs
