// The DWCS scheduler, plus the generic packet-scheduler interface that the
// baseline policies (EDF, static priority, round-robin) also implement.
//
// Lifecycle per scheduling cycle (schedule_next):
//   1. Late-packet processing: streams whose head packet missed its deadline
//      get the rule-(B) window adjustment; lossy streams drop the packet
//      without transmitting it ("stream-selective lossiness", the paper's
//      traffic-elimination mechanism), loss-intolerant streams keep it for
//      late transmission.
//   2. Pick: the representation returns the stream with lowest priority
//      value under the precedence rules (comparator.hpp).
//   3. Service: dequeue the head frame, apply the rule-(A) window adjustment
//      (for on-time service), advance the stream's deadline by its period.
//
// Window-constraint adjustments (West & Schwan). With original constraint
// x/y and current x'/y':
//   (A) serviced before deadline:   if (y' > x') y'--;
//                                   if (y' == x') { x'=x; y'=y; }   [window
//       complete: y-x on-time services satisfy any window of y packets]
//   (B) head packet lost/late:      if (x' > 0) { x'--; y'--;
//                                     if (y' == x') { x'=x; y'=y; } }
//                                   else violation: y'++  [rule 3 makes the
//       violated stream increasingly urgent among zero-tolerance streams]
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dwcs/comparator.hpp"
#include "dwcs/cost.hpp"
#include "dwcs/repr.hpp"
#include "dwcs/ring.hpp"
#include "dwcs/types.hpp"
#include "sim/time.hpp"

namespace nistream::dwcs {

/// Interface shared by DWCS and the baseline policies, so experiments can
/// swap schedulers without touching the harness.
class PacketScheduler {
 public:
  virtual ~PacketScheduler() = default;

  virtual StreamId create_stream(const StreamParams& params, sim::Time now) = 0;
  /// Producer side. Returns false when the stream's ring is full.
  virtual bool enqueue(StreamId id, const FrameDescriptor& frame,
                       sim::Time now) = 0;
  /// One scheduling cycle at time `now`; nullopt when nothing is backlogged.
  virtual std::optional<Dispatch> schedule_next(sim::Time now) = 0;

  [[nodiscard]] virtual const StreamStats& stats(StreamId id) const = 0;
  [[nodiscard]] virtual std::size_t backlog(StreamId id) const = 0;
  [[nodiscard]] virtual std::size_t stream_count() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

class DwcsScheduler final : public PacketScheduler, private StreamTable {
 public:
  struct Config {
    ArithMode arith = ArithMode::kFixedPoint;
    ReprKind repr = ReprKind::kDualHeap;
    /// Rank policy of the PIFO engine; consulted when repr == kPifo (flat
    /// engine) or kHierarchical (per-core engines + root order). The window-
    /// constraint analysis (late processing, rule A/B adjustments) runs
    /// unchanged under any policy — only the pick order differs — which is
    /// what lets bench/ablate_policy isolate the policy effect.
    PolicyKind policy = PolicyKind::kDwcs;
    /// Shard count and interconnect-hop cost of the sharded multi-core
    /// representation; consulted only when repr == ReprKind::kHierarchical.
    HierarchicalParams hierarchical{};
    DescriptorResidency residency = DescriptorResidency::kPinnedMemory;
    std::size_t ring_capacity = 256;
    /// On an empty->backlogged transition, restart the deadline grid at
    /// now + period instead of charging the idle gap as misses.
    bool reset_deadline_on_idle = true;
    /// Deadline anchoring. The paper defines the deadline as "the maximum
    /// allowable time between servicing consecutive packets": anchored to
    /// the previous packet's actual service/drop time (true), the next
    /// deadline is service_time + period, so one late service does not
    /// cascade into lateness for every successor. Anchored to a fixed grid
    /// (false), deadlines advance by exactly one period per departure.
    bool deadline_from_completion = false;
    /// Fixed control-flow overhead charged per scheduling decision (call
    /// chain, instruction fetch, kernel entry/exit on the embedded build) —
    /// calibrated so the 66 MHz i960 decision path lands on Table 1/2.
    std::int64_t decision_overhead_cycles = 4100;
    /// Scheduler-granularity allowance for late-packet processing: a head no
    /// more than this far past its deadline is still serviced (and counted
    /// on time) instead of dropped/penalized. The paced dispatch loop
    /// serializes same-instant deadlines at the per-frame CPU cost, so with
    /// zero slack a stream whose grid lands inside another stream's dispatch
    /// burst loses its head every period. Zero preserves the strict paper
    /// semantics; the session plane sets a fraction of the frame period.
    sim::Time lateness_slack = sim::Time::zero();
  };

  explicit DwcsScheduler(Config config, CostHook& hook = null_cost_hook());

  /// Pre-size per-stream state and the representation's structures for `n`
  /// streams (host-side capacity planning; charges nothing). Optional — the
  /// scheduler grows on demand without it.
  void reserve_streams(std::size_t n) {
    streams_.reserve(n);
    views_.reserve(n);
    repr_->reserve(n);
  }

  // PacketScheduler:
  StreamId create_stream(const StreamParams& params, sim::Time now) override;
  bool enqueue(StreamId id, const FrameDescriptor& frame, sim::Time now) override;
  std::optional<Dispatch> schedule_next(sim::Time now) override;
  [[nodiscard]] const StreamStats& stats(StreamId id) const override;
  [[nodiscard]] std::size_t backlog(StreamId id) const override;
  [[nodiscard]] std::size_t stream_count() const override {
    return streams_.size();
  }
  [[nodiscard]] const char* name() const override { return "dwcs"; }

  // Introspection for tests and experiments:
  [[nodiscard]] const StreamView& stream_view(StreamId id) const {
    return view(id);
  }
  [[nodiscard]] const StreamParams& stream_params(StreamId id) const;
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
  /// The live representation. Callers that configured a specific ReprKind may
  /// downcast (e.g. to HierarchicalScheduler to attach a shard-execution
  /// trace); the scheduler itself only ever uses the ScheduleRepr interface.
  [[nodiscard]] ScheduleRepr& repr() { return *repr_; }
  [[nodiscard]] std::uint64_t total_violations() const;
  [[nodiscard]] const Config& config() const { return config_; }

  /// Deadline of the earliest-deadline backlogged stream; nullopt when idle.
  /// Used by paced dispatch loops to sleep until the next service instant.
  [[nodiscard]] std::optional<sim::Time> earliest_backlog_deadline() {
    const auto sid = repr_->earliest_deadline();
    if (!sid) return std::nullopt;
    return views_[*sid].next_deadline;
  }

  /// Fires whenever the scheduler drops a frame internally (lossy late drop
  /// or purge) — frames that leave the queues without ever being dispatched.
  /// Owners use it to release per-frame resources and feed QoS monitors.
  /// Charges nothing: the descriptor handed over is read unaccounted.
  using DropHook = std::function<void(StreamId, const FrameDescriptor&)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  /// Discard every queued frame of `id` without window adjustments — the
  /// board holding the queues died; the frames are gone, not "late". Fires
  /// the drop hook per frame, counts them in stats().dropped, and charges
  /// nothing (no CPU exists to charge). Returns the number purged.
  std::size_t purge_stream(StreamId id);

 private:
  // Dynamic keys (StreamView) live in the dense `views_` vector that backs
  // the StreamTable base, not here: representation compares index that array
  // directly, and keeping it free of cold per-stream state (params, stats,
  // ring pointers) keeps the sift paths' working set tight.
  struct StreamState {
    StreamParams params;
    FrameRing* ring = nullptr;  // owned by ring_pool_, stable address
    StreamStats stats;
    bool has_backlog = false;         // stream currently in the repr
    bool head_late_adjusted = false;  // rule B applied to the current head
    SimAddr state_addr = 0;  // simulated address of the stream-state block
  };

  /// Words of per-stream state (attributes, deadline, stats, timestamps)
  /// read+written when a frame is serviced / dropped. This is the traffic
  /// the i960 d-cache accelerates in Table 2.
  static constexpr int kServiceStateWords = 24;
  static constexpr int kDropStateWords = 12;
  void touch_stream_state(StreamState& s, int words);

  void adjust_serviced(StreamView& v, const WindowConstraint& orig);  // (A)
  void adjust_lost(StreamView& v, const WindowConstraint& orig,      // (B)
                   StreamStats& stats);
  void advance_deadline(StreamState& s, StreamView& v, sim::Time now);
  void refresh_head_arrival(StreamState& s, StreamView& v);
  void process_late(sim::Time now);

  Config config_;
  CostHook* hook_;
  // Cached hook_->accounted(): false only for the discarding null hook, so
  // every charge site can be guarded by a plain bool instead of paying a
  // virtual no-op call — dozens per decision on wall-clock runs.
  bool charged_;
  Comparator comparator_;
  FrameRingPool ring_pool_;  // pooled arena; streams_ holds raw pointers
  std::vector<StreamState> streams_;
  std::vector<StreamView> views_;  // parallel to streams_; backs StreamTable
  std::unique_ptr<ScheduleRepr> repr_;
  DropHook drop_hook_;
  std::uint64_t decisions_ = 0;
  SimAddr next_ring_base_ = 0x0200'0000;  // simulated card-memory layout
};

}  // namespace nistream::dwcs
