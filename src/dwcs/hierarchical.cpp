#include "dwcs/hierarchical.hpp"

#include <cassert>

#include "dwcs/shard_exec.hpp"

namespace nistream::dwcs {

HierarchicalScheduler::HierarchicalScheduler(const StreamTable& table,
                                             const Comparator& cmp,
                                             CostHook& hook, SimAddr base,
                                             const HierarchicalParams& params,
                                             PolicyKind policy)
    : table_{table},
      cmp_{cmp},
      hook_{&hook},
      charged_{hook.accounted()},
      hop_cycles_{params.hop_cycles},
      policy_{policy},
      pifo_cores_{params.pifo_cores},
      tenant_{&cmp},
      root_pick_{RootWinnerLess{this}, hook,
                 base + params.shards * kCoreStride},
      root_deadline_{RootDeadlineLess{this}, hook,
                     base + params.shards * kCoreStride + 0x10000} {
  const std::uint32_t n = params.shards == 0 ? 1 : params.shards;
  cores_.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    cores_.push_back(make_core(base + static_cast<SimAddr>(s) * kCoreStride));
  }
  winner_.assign(n, kInvalidStream);
  edl_.assign(n, kInvalidStream);
  population_.assign(n, 0);
  dirty_.assign(n, 0);
  dirty_list_.reserve(n);  // at most one entry per shard: allocation-free
  root_pick_.reserve(n);
  root_deadline_.reserve(n);
}

std::unique_ptr<ScheduleRepr> HierarchicalScheduler::make_core(
    SimAddr core_base) {
  switch (policy_) {
    case PolicyKind::kDwcs:
      if (pifo_cores_) {
        return std::make_unique<PifoRepr<DwcsRank>>(table_, DwcsRank{&cmp_},
                                                    *hook_, core_base);
      }
      return std::make_unique<DualHeapRepr>(table_, cmp_, *hook_, core_base);
    case PolicyKind::kEdf:
      return std::make_unique<PifoRepr<EdfRank>>(table_, EdfRank{}, *hook_,
                                                 core_base);
    case PolicyKind::kStaticPriority:
      return std::make_unique<PifoRepr<StaticPriorityRank>>(
          table_, StaticPriorityRank{}, *hook_, core_base);
    case PolicyKind::kWfq:
      // Every core clocks against the scheduler-wide WfqState held by wfq_.
      return std::make_unique<PifoRepr<WfqRank>>(table_, WfqRank{wfq_.state},
                                                 *hook_, core_base);
    case PolicyKind::kTenantDwcs:
      // Every core clocks scope finish tags against the scheduler-wide
      // TenantDwcsState held by tenant_ (same sharing contract as WFQ).
      return std::make_unique<PifoRepr<TenantDwcsRank>>(
          table_, TenantDwcsRank{&cmp_, tenant_.state}, *hook_, core_base);
  }
  return nullptr;
}

bool HierarchicalScheduler::winner_precedes(StreamId a, StreamId b) const {
  switch (policy_) {
    case PolicyKind::kDwcs:
      return cmp_.precedes(table_.view(a), a, table_.view(b), b);
    case PolicyKind::kEdf:
      return EdfRank{}.precedes(table_.view(a), a, table_.view(b), b);
    case PolicyKind::kStaticPriority:
      return StaticPriorityRank{}.precedes(table_.view(a), a, table_.view(b),
                                           b);
    case PolicyKind::kWfq:
      return wfq_.precedes(table_.view(a), a, table_.view(b), b);
    case PolicyKind::kTenantDwcs:
      return tenant_.precedes(table_.view(a), a, table_.view(b), b);
  }
  return a < b;
}

void HierarchicalScheduler::on_charge(StreamId id) {
  // Forward to the owning core's policy state; the scheduler's follow-up
  // update()/remove() of the same stream refreshes the shard and root.
  const auto s = shard_for(id);
  std::int64_t t0 = 0;
  if (trace_ != nullptr) {
    meter_->set_context(s);
    t0 = meter_->total();
  }
  cores_[s]->on_charge(id);
  if (trace_ != nullptr) {
    trace_->mutation(s, id, meter_->total() - t0, 0);
  }
}

void HierarchicalScheduler::refresh(std::uint32_t s, StreamId mutated) {
  const StreamId old_w = winner_[s];
  const StreamId old_e = edl_[s];
  const auto w = cores_[s]->pick();
  const StreamId new_w = w ? *w : kInvalidStream;
  const StreamId new_e =
      w ? *cores_[s]->earliest_deadline() : kInvalidStream;

  // Caches first, root sifts second: the root comparators read winner_/edl_
  // through `this`, so both entries must hold the new ids before any compare
  // fires.
  winner_[s] = new_w;
  edl_[s] = new_e;

  bool root_changed = false;
  if (new_w == kInvalidStream) {
    if (old_w != kInvalidStream) {
      // The core went idle; retire both of its root entries.
      root_pick_.erase(s);
      root_deadline_.erase(s);
      root_changed = true;
    }
  } else if (old_w == kInvalidStream) {
    // The core came alive; enter the root arbiter.
    root_pick_.push(s);
    root_deadline_.push(s);
    root_changed = true;
  } else {
    // Re-sift only the entries the mutation could have changed: a new id,
    // or the cached stream itself mutated (its key changed under the root).
    if (new_w != old_w || mutated == new_w) {
      root_pick_.update(s);
      root_changed = true;
    }
    if (new_e != old_e || mutated == new_e) {
      root_deadline_.update(s);
      root_changed = true;
    }
  }

  // One winner-update message per mutation that changed what the root sees:
  // the fixed-latency on-chip hop of the distributed-NP interconnect model.
  // Single-core boards (1 shard) have no interconnect to cross.
  if (root_changed && charged_ && hop_cycles_ > 0 && cores_.size() > 1) {
    hook_->cycles(hop_cycles_);
    ++hops_charged_;
  }
}

void HierarchicalScheduler::flush_dirty() {
  for (const auto s : dirty_list_) {
    dirty_[s] = 0;
    const StreamId old_w = winner_[s];
    const auto w = cores_[s]->pick();
    const StreamId new_w = w ? *w : kInvalidStream;
    winner_[s] = new_w;
    edl_[s] = w ? *cores_[s]->earliest_deadline() : kInvalidStream;
    if (new_w == kInvalidStream) {
      if (old_w != kInvalidStream) {
        root_pick_.erase(s);
        root_deadline_.erase(s);
      }
    } else if (old_w == kInvalidStream) {
      root_pick_.push(s);
      root_deadline_.push(s);
    } else {
      // Any number of mutations may have landed since the last repair; both
      // cached keys may have changed even when the cached ids did not, so
      // re-sift unconditionally (an in-place update of an unmoved entry is
      // two compares on an N-entry heap).
      root_pick_.update(s);
      root_deadline_.update(s);
    }
  }
  dirty_list_.clear();
}

void HierarchicalScheduler::insert(StreamId id) {
  const auto s = shard_for(id);
  std::int64_t t0 = 0;
  if (trace_ != nullptr) {
    meter_->set_context(s);
    t0 = meter_->total();
  }
  cores_[s]->insert(id);
  ++population_[s];
  const std::int64_t t1 = trace_ != nullptr ? meter_->total() : 0;
  if (charged_) {
    refresh(s, id);
  } else {
    mark_dirty(s);
  }
  if (trace_ != nullptr) {
    trace_->mutation(s, id, t1 - t0, meter_->total() - t1);
  }
}

void HierarchicalScheduler::remove(StreamId id) {
  const auto s = shard_for(id);
  std::int64_t t0 = 0;
  if (trace_ != nullptr) {
    meter_->set_context(s);
    t0 = meter_->total();
  }
  cores_[s]->remove(id);
  assert(population_[s] > 0);
  --population_[s];
  const std::int64_t t1 = trace_ != nullptr ? meter_->total() : 0;
  if (charged_) {
    refresh(s, id);
  } else {
    mark_dirty(s);
  }
  if (trace_ != nullptr) {
    trace_->mutation(s, id, t1 - t0, meter_->total() - t1);
  }
}

void HierarchicalScheduler::update(StreamId id) {
  const auto s = shard_for(id);
  std::int64_t t0 = 0;
  if (trace_ != nullptr) {
    meter_->set_context(s);
    t0 = meter_->total();
  }
  cores_[s]->update(id);
  const std::int64_t t1 = trace_ != nullptr ? meter_->total() : 0;
  if (charged_) {
    refresh(s, id);
  } else {
    mark_dirty(s);
  }
  if (trace_ != nullptr) {
    trace_->mutation(s, id, t1 - t0, meter_->total() - t1);
  }
}

void HierarchicalScheduler::reserve(std::size_t n) {
  // Hash sharding is balanced to within a few sqrt(n/N); a 1/4 slack on the
  // expected shard size makes growth-free setup the common case without
  // reserving N times the population.
  const std::size_t per_core = (n + cores_.size() - 1) / cores_.size();
  for (auto& core : cores_) core->reserve(per_core + per_core / 4 + 8);
}

std::optional<StreamId> HierarchicalScheduler::pick() {
  if (!dirty_list_.empty()) flush_dirty();
  if (root_pick_.empty()) return std::nullopt;
  return winner_[root_pick_.top_unchecked()];
}

std::optional<StreamId> HierarchicalScheduler::earliest_deadline() {
  if (!dirty_list_.empty()) flush_dirty();
  if (root_deadline_.empty()) return std::nullopt;
  return edl_[root_deadline_.top_unchecked()];
}

}  // namespace nistream::dwcs
