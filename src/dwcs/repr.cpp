#include "dwcs/repr.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <list>

#include "dwcs/dual_heap.hpp"
#include "dwcs/hierarchical.hpp"
#include "dwcs/pifo.hpp"

namespace nistream::dwcs {
namespace {

// DeadlineIdLess / ToleranceLess / FullLess live in pifo.hpp (derived from
// the rank structs) and DualHeapRepr in dual_heap.hpp (hierarchical.hpp
// instantiates one per simulated core). The historical SingleHeapRepr — one
// heap under the full rule-1..5 comparator — is PifoRepr<DwcsRank> under its
// old name (identical heap layout and charge stream; see pifo.hpp). The
// remaining representations are single-board-only and stay private here.

/// Insertion-sorted list under the full comparator.
class SortedListRepr final : public ScheduleRepr {
 public:
  SortedListRepr(const StreamTable& table, const Comparator& cmp,
                 CostHook& hook, SimAddr base)
      : table_{table},
        cmp_{cmp},
        hook_{&hook},
        charged_{hook.accounted()},
        base_{base} {}

  void insert(StreamId id) override {
    auto it = list_.begin();
    std::size_t idx = 0;
    for (; it != list_.end(); ++it, ++idx) {
      if (charged_) hook_->mem(base_ + idx * 8);
      if (cmp_.precedes(table_.view(id), id, table_.view(*it), *it)) break;
    }
    list_.insert(it, id);
  }
  void remove(StreamId id) override { list_.remove(id); }
  void update(StreamId id) override {
    remove(id);
    insert(id);
  }
  std::optional<StreamId> pick() override {
    if (list_.empty()) return std::nullopt;
    if (charged_) hook_->mem(base_);
    return list_.front();
  }
  std::optional<StreamId> earliest_deadline() override {
    // The full order is deadline-major (rule 1), so the front has the
    // earliest deadline — but among deadline ties the contract is lowest id
    // (matching the heaps), not best tolerance, so scan the tied prefix.
    if (list_.empty()) return std::nullopt;
    const sim::Time dmin = table_.view(list_.front()).next_deadline;
    StreamId best = list_.front();
    std::size_t idx = 0;
    for (const StreamId s : list_) {
      if (charged_) hook_->mem(base_ + idx++ * 8);
      if (table_.view(s).next_deadline != dmin) break;
      best = std::min(best, s);
    }
    return best;
  }
  const char* name() const override { return "sorted-list"; }

 private:
  const StreamTable& table_;
  const Comparator& cmp_;
  CostHook* hook_;
  bool charged_;  // cached hook.accounted(); false only for the null hook
  SimAddr base_;
  std::list<StreamId> list_;
};

/// Arrival order of head packets; deliberately attribute-blind (paper
/// §3.1.1: "FCFS circular buffers"). earliest_deadline() still answers
/// truthfully so the late-drop machinery keeps working.
class FcfsRepr final : public ScheduleRepr {
 public:
  FcfsRepr(const StreamTable& table, CostHook& hook, SimAddr base)
      : table_{table}, hook_{&hook}, charged_{hook.accounted()}, base_{base} {}

  void insert(StreamId id) override { members_.push_back(id); }
  void remove(StreamId id) override { std::erase(members_, id); }
  void update(StreamId) override {}  // arrival order does not change
  void reserve(std::size_t n) override { members_.reserve(n); }

  std::optional<StreamId> pick() override {
    std::optional<StreamId> best;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (charged_) hook_->mem(base_ + i * 8);
      const StreamId s = members_[i];
      if (!best || table_.view(s).head_enqueued_at <
                       table_.view(*best).head_enqueued_at) {
        best = s;
      }
    }
    return best;
  }

  std::optional<StreamId> earliest_deadline() override {
    std::optional<StreamId> best;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (charged_) hook_->mem(base_ + i * 8);
      const StreamId s = members_[i];
      if (!best ||
          table_.view(s).next_deadline < table_.view(*best).next_deadline ||
          (table_.view(s).next_deadline == table_.view(*best).next_deadline &&
           s < *best)) {
        best = s;
      }
    }
    return best;
  }

  const char* name() const override { return "fcfs"; }

 private:
  const StreamTable& table_;
  CostHook* hook_;
  bool charged_;  // cached hook.accounted(); false only for the null hook
  SimAddr base_;
  std::vector<StreamId> members_;
};

/// Deadline-bucketed calendar queue: streams hash into day buckets by
/// deadline; pick scans the earliest non-empty day and breaks ties with the
/// full comparator. Bucket width trades bucket-scan length against
/// bucket-chain length.
///
/// The calendar is a circular bucket array (a "timing wheel"), not a
/// std::map: a day maps to bucket `day mod n_buckets`, entries carry their
/// day so colliding days share a bucket, and the earliest populated day is
/// found by walking forward from a cached lower bound (`min_day_`, the
/// classic calendar-queue year scan). The wheel doubles when load exceeds
/// two entries per bucket. Charged costs are unchanged from the map-based
/// implementation: only the entries of the minimum day are charged, in
/// insertion order, exactly as the old per-day vectors were; wheel
/// bookkeeping (collision skips, day scans, resizes) is host work.
class CalendarQueueRepr final : public ScheduleRepr {
 public:
  CalendarQueueRepr(const StreamTable& table, const Comparator& cmp,
                    CostHook& hook, SimAddr base,
                    sim::Time bucket_width = sim::Time::ms(10))
      : table_{table}, cmp_{cmp}, hook_{&hook}, charged_{hook.accounted()},
        base_{base}, width_ns_{bucket_width.raw_ns()}, buckets_{64} {}

  void insert(StreamId id) override {
    if (id >= day_of_stream_.size()) day_of_stream_.resize(id + 1, kAbsent);
    assert(day_of_stream_[id] == kAbsent);
    if (count_ + 1 > buckets_.size() * 2) grow(buckets_.size() * 2);
    const std::int64_t day = day_of(id);
    buckets_[index(day)].push_back({day, id});
    day_of_stream_[id] = day;
    if (count_ == 0 || day < min_day_) min_day_ = day;
    ++count_;
  }

  void remove(StreamId id) override {
    // Guarded: removing an id that was never inserted (or whose entry was
    // already evicted) is a no-op instead of an out-of-bounds index.
    if (id >= day_of_stream_.size() || day_of_stream_[id] == kAbsent) return;
    auto& bucket = buckets_[index(day_of_stream_[id])];
    std::erase_if(bucket, [id](const Entry& e) { return e.id == id; });
    day_of_stream_[id] = kAbsent;
    --count_;
  }

  void update(StreamId id) override {
    // A stream whose entry was already evicted (or never inserted) is
    // re-admitted under its current deadline rather than indexing a stale
    // bucket key.
    if (id >= day_of_stream_.size() || day_of_stream_[id] == kAbsent) {
      insert(id);
      return;
    }
    const std::int64_t day = day_of(id);
    if (day == day_of_stream_[id]) return;  // tolerance-only change
    remove(id);
    insert(id);
  }

  void reserve(std::size_t n) override {
    day_of_stream_.reserve(n);
    std::size_t target = buckets_.size();
    while (n > target * 2) target *= 2;
    if (target != buckets_.size()) grow(target);
  }

  std::optional<StreamId> pick() override {
    if (count_ == 0) return std::nullopt;
    advance_min_day();
    // The earliest day holds the earliest deadline, but the full winner
    // could be a deadline-tied stream in the same day only (rule 1 is
    // deadline-major), so one day scan suffices.
    StreamId best = kInvalidStream;
    std::size_t charged = 0;
    for (const Entry& e : buckets_[index(min_day_)]) {
      if (e.day != min_day_) continue;  // wheel collision from another year
      if (charged_) hook_->mem(base_ + charged++ * 8);
      if (best == kInvalidStream) {
        best = e.id;
      } else if (cmp_.precedes(table_.view(e.id), e.id, table_.view(best),
                               best)) {
        best = e.id;
      }
    }
    assert(best != kInvalidStream);
    return best;
  }

  std::optional<StreamId> earliest_deadline() override {
    if (count_ == 0) return std::nullopt;
    advance_min_day();
    StreamId best = kInvalidStream;
    std::size_t charged = 0;
    for (const Entry& e : buckets_[index(min_day_)]) {
      if (e.day != min_day_) continue;
      if (charged_) hook_->mem(base_ + charged++ * 8);
      if (best == kInvalidStream) {
        best = e.id;
        continue;
      }
      const auto ds = table_.view(e.id).next_deadline;
      const auto db = table_.view(best).next_deadline;
      if (ds < db || (ds == db && e.id < best)) best = e.id;
    }
    assert(best != kInvalidStream);
    return best;
  }

  const char* name() const override { return "calendar-queue"; }

 private:
  static constexpr std::int64_t kAbsent = std::numeric_limits<std::int64_t>::min();

  struct Entry {
    std::int64_t day;
    StreamId id;
  };

  [[nodiscard]] std::int64_t day_of(StreamId id) const {
    return table_.view(id).next_deadline.raw_ns() / width_ns_;
  }
  [[nodiscard]] std::size_t index(std::int64_t day) const {
    return static_cast<std::size_t>(day) & (buckets_.size() - 1);
  }

  /// Advance `min_day_` (a lower bound) to the earliest populated day.
  /// Precondition: count_ > 0.
  void advance_min_day() {
    const auto wheel = static_cast<std::int64_t>(buckets_.size());
    for (std::int64_t d = min_day_; d < min_day_ + wheel; ++d) {
      for (const Entry& e : buckets_[index(d)]) {
        if (e.day == d) {
          min_day_ = d;
          return;
        }
      }
    }
    // Every entry lives beyond one wheel revolution from the bound (sparse
    // deadlines): recompute exactly. Rare, O(n).
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const auto& bucket : buckets_) {
      for (const Entry& e : bucket) best = std::min(best, e.day);
    }
    min_day_ = best;
  }

  void grow(std::size_t n_buckets) {
    std::vector<std::vector<Entry>> next{n_buckets};
    for (auto& bucket : buckets_) {
      for (const Entry& e : bucket) {
        next[static_cast<std::size_t>(e.day) & (n_buckets - 1)].push_back(e);
      }
    }
    buckets_ = std::move(next);
  }

  const StreamTable& table_;
  const Comparator& cmp_;
  CostHook* hook_;
  bool charged_;  // cached hook.accounted(); false only for the null hook
  SimAddr base_;
  std::int64_t width_ns_;
  std::vector<std::vector<Entry>> buckets_;  // size is a power of two
  std::vector<std::int64_t> day_of_stream_;  // kAbsent when not queued
  std::size_t count_ = 0;
  std::int64_t min_day_ = 0;
};

}  // namespace

const char* to_string(ReprKind kind) {
  switch (kind) {
    case ReprKind::kDualHeap: return "dual-heap";
    case ReprKind::kSingleHeap: return "single-heap";
    case ReprKind::kSortedList: return "sorted-list";
    case ReprKind::kFcfs: return "fcfs";
    case ReprKind::kCalendarQueue: return "calendar-queue";
    case ReprKind::kHierarchical: return "hierarchical";
    case ReprKind::kPifo: return "pifo";
  }
  return "?";
}

const char* to_string(PolicyKind policy) {
  switch (policy) {
    case PolicyKind::kDwcs: return "dwcs";
    case PolicyKind::kEdf: return "edf";
    case PolicyKind::kStaticPriority: return "static-priority";
    case PolicyKind::kWfq: return "wfq";
    case PolicyKind::kTenantDwcs: return "tenant-dwcs";
  }
  return "?";
}

std::unique_ptr<ScheduleRepr> make_repr(ReprKind kind, const StreamTable& table,
                                        const Comparator& cmp, CostHook& hook,
                                        SimAddr heap_base,
                                        const HierarchicalParams& hier,
                                        PolicyKind policy) {
  switch (kind) {
    case ReprKind::kDualHeap:
      return std::make_unique<DualHeapRepr>(table, cmp, hook, heap_base);
    case ReprKind::kSingleHeap:
      return std::make_unique<PifoRepr<DwcsRank>>(table, DwcsRank{&cmp}, hook,
                                                  heap_base, "single-heap");
    case ReprKind::kSortedList:
      return std::make_unique<SortedListRepr>(table, cmp, hook, heap_base);
    case ReprKind::kFcfs:
      return std::make_unique<FcfsRepr>(table, hook, heap_base);
    case ReprKind::kCalendarQueue:
      return std::make_unique<CalendarQueueRepr>(table, cmp, hook, heap_base);
    case ReprKind::kHierarchical:
      return std::make_unique<HierarchicalScheduler>(table, cmp, hook,
                                                     heap_base, hier, policy);
    case ReprKind::kPifo:
      switch (policy) {
        case PolicyKind::kDwcs:
          return std::make_unique<PifoRepr<DwcsRank>>(table, DwcsRank{&cmp},
                                                      hook, heap_base);
        case PolicyKind::kEdf:
          return std::make_unique<PifoRepr<EdfRank>>(table, EdfRank{}, hook,
                                                     heap_base);
        case PolicyKind::kStaticPriority:
          return std::make_unique<PifoRepr<StaticPriorityRank>>(
              table, StaticPriorityRank{}, hook, heap_base);
        case PolicyKind::kWfq:
          return std::make_unique<PifoRepr<WfqRank>>(table, WfqRank{}, hook,
                                                     heap_base);
        case PolicyKind::kTenantDwcs:
          // Tenant-DWCS is inherently a PIFO TREE — a shared scope tag moves
          // every scope member's key at once, which one heap cannot track
          // under the update-only-the-charged-stream contract (see the
          // structural-requirement note on TenantDwcsRank). Build the
          // scope-sharded hierarchical engine even for the flat kind.
          return std::make_unique<HierarchicalScheduler>(
              table, cmp, hook, heap_base,
              HierarchicalParams{.shards = TenantDwcsRank::kDefaultScopes},
              policy);
      }
      return nullptr;
  }
  return nullptr;
}

}  // namespace nistream::dwcs
