#include "dwcs/repr.hpp"

#include <algorithm>
#include <cassert>
#include <list>

namespace nistream::dwcs {
namespace {

/// Figure 4(a): deadline heap + loss-tolerance heap. The deadline heap
/// resolves rule 1; ties at the minimum deadline are broken by the tolerance
/// ordering, which the tolerance heap keeps ready (its top is the globally
/// most tolerance-urgent stream, so the common all-deadlines-equal case is
/// O(1) after the heaps are maintained).
class DualHeapRepr final : public ScheduleRepr {
 public:
  DualHeapRepr(const StreamTable& table, const Comparator& cmp, CostHook& hook,
               SimAddr base)
      : table_{table},
        cmp_{cmp},
        deadline_heap_{
            [this](StreamId a, StreamId b) {
              const auto& va = table_.view(a);
              const auto& vb = table_.view(b);
              if (va.next_deadline != vb.next_deadline) {
                return va.next_deadline < vb.next_deadline;
              }
              return a < b;
            },
            hook, base},
        tolerance_heap_{
            [this](StreamId a, StreamId b) {
              return cmp_.tolerance_precedes(table_.view(a), a, table_.view(b),
                                             b);
            },
            hook, base + 0x10000} {}

  void insert(StreamId id) override {
    deadline_heap_.push(id);
    tolerance_heap_.push(id);
  }
  void remove(StreamId id) override {
    deadline_heap_.erase(id);
    tolerance_heap_.erase(id);
  }
  void update(StreamId id) override {
    deadline_heap_.update(id);
    tolerance_heap_.update(id);
  }

  std::optional<StreamId> pick() override {
    const auto top = deadline_heap_.top();
    if (!top) return std::nullopt;
    // Fast path: if the tolerance heap's top shares the minimum deadline it
    // is the answer outright (it beats every other deadline-tied stream in
    // the tolerance order).
    const sim::Time dmin = table_.view(*top).next_deadline;
    const auto tol_top = tolerance_heap_.top();
    if (tol_top && table_.view(*tol_top).next_deadline == dmin) return tol_top;
    // Otherwise collect the deadline ties and break them explicitly.
    StreamId best = *top;
    for (std::size_t i = 0; i < deadline_heap_.raw().size(); ++i) {
      deadline_heap_.touch(i);
      const StreamId s = deadline_heap_.raw()[i];
      if (s == best) continue;
      if (table_.view(s).next_deadline != dmin) continue;
      if (cmp_.tolerance_precedes(table_.view(s), s, table_.view(best), best)) {
        best = s;
      }
    }
    return best;
  }

  std::optional<StreamId> earliest_deadline() override {
    return deadline_heap_.top();
  }

  const char* name() const override { return "dual-heap"; }

 private:
  const StreamTable& table_;
  const Comparator& cmp_;
  IndexedHeap deadline_heap_;
  IndexedHeap tolerance_heap_;
};

/// One heap under the full rule-1..5 comparator.
class SingleHeapRepr final : public ScheduleRepr {
 public:
  SingleHeapRepr(const StreamTable& table, const Comparator& cmp,
                 CostHook& hook, SimAddr base)
      : table_{table},
        heap_{[this, &cmp](StreamId a, StreamId b) {
                return cmp.precedes(table_.view(a), a, table_.view(b), b);
              },
              hook, base},
        deadline_heap_{
            [this](StreamId a, StreamId b) {
              const auto& va = table_.view(a);
              const auto& vb = table_.view(b);
              if (va.next_deadline != vb.next_deadline) {
                return va.next_deadline < vb.next_deadline;
              }
              return a < b;
            },
            hook, base + 0x10000} {}

  void insert(StreamId id) override {
    heap_.push(id);
    deadline_heap_.push(id);
  }
  void remove(StreamId id) override {
    heap_.erase(id);
    deadline_heap_.erase(id);
  }
  void update(StreamId id) override {
    heap_.update(id);
    deadline_heap_.update(id);
  }
  std::optional<StreamId> pick() override { return heap_.top(); }
  std::optional<StreamId> earliest_deadline() override {
    return deadline_heap_.top();
  }
  const char* name() const override { return "single-heap"; }

 private:
  const StreamTable& table_;
  IndexedHeap heap_;
  IndexedHeap deadline_heap_;
};

/// Insertion-sorted list under the full comparator.
class SortedListRepr final : public ScheduleRepr {
 public:
  SortedListRepr(const StreamTable& table, const Comparator& cmp,
                 CostHook& hook, SimAddr base)
      : table_{table}, cmp_{cmp}, hook_{&hook}, base_{base} {}

  void insert(StreamId id) override {
    auto it = list_.begin();
    std::size_t idx = 0;
    for (; it != list_.end(); ++it, ++idx) {
      hook_->mem(base_ + idx * 8);
      if (cmp_.precedes(table_.view(id), id, table_.view(*it), *it)) break;
    }
    list_.insert(it, id);
  }
  void remove(StreamId id) override { list_.remove(id); }
  void update(StreamId id) override {
    remove(id);
    insert(id);
  }
  std::optional<StreamId> pick() override {
    if (list_.empty()) return std::nullopt;
    hook_->mem(base_);
    return list_.front();
  }
  std::optional<StreamId> earliest_deadline() override {
    // The full order is deadline-major (rule 1), so the front has the
    // earliest deadline — but among deadline ties the contract is lowest id
    // (matching the heaps), not best tolerance, so scan the tied prefix.
    if (list_.empty()) return std::nullopt;
    const sim::Time dmin = table_.view(list_.front()).next_deadline;
    StreamId best = list_.front();
    std::size_t idx = 0;
    for (const StreamId s : list_) {
      hook_->mem(base_ + idx++ * 8);
      if (table_.view(s).next_deadline != dmin) break;
      best = std::min(best, s);
    }
    return best;
  }
  const char* name() const override { return "sorted-list"; }

 private:
  const StreamTable& table_;
  const Comparator& cmp_;
  CostHook* hook_;
  SimAddr base_;
  std::list<StreamId> list_;
};

/// Arrival order of head packets; deliberately attribute-blind (paper
/// §3.1.1: "FCFS circular buffers"). earliest_deadline() still answers
/// truthfully so the late-drop machinery keeps working.
class FcfsRepr final : public ScheduleRepr {
 public:
  FcfsRepr(const StreamTable& table, CostHook& hook, SimAddr base)
      : table_{table}, hook_{&hook}, base_{base} {}

  void insert(StreamId id) override { members_.push_back(id); }
  void remove(StreamId id) override { std::erase(members_, id); }
  void update(StreamId) override {}  // arrival order does not change

  std::optional<StreamId> pick() override {
    std::optional<StreamId> best;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      hook_->mem(base_ + i * 8);
      const StreamId s = members_[i];
      if (!best || table_.view(s).head_enqueued_at <
                       table_.view(*best).head_enqueued_at) {
        best = s;
      }
    }
    return best;
  }

  std::optional<StreamId> earliest_deadline() override {
    std::optional<StreamId> best;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      hook_->mem(base_ + i * 8);
      const StreamId s = members_[i];
      if (!best ||
          table_.view(s).next_deadline < table_.view(*best).next_deadline ||
          (table_.view(s).next_deadline == table_.view(*best).next_deadline &&
           s < *best)) {
        best = s;
      }
    }
    return best;
  }

  const char* name() const override { return "fcfs"; }

 private:
  const StreamTable& table_;
  CostHook* hook_;
  SimAddr base_;
  std::vector<StreamId> members_;
};

/// Deadline-bucketed calendar queue: streams hash into day buckets by
/// deadline; pick scans the earliest non-empty bucket and breaks ties with
/// the full comparator. Bucket width trades bucket-scan length against
/// bucket-chain length.
class CalendarQueueRepr final : public ScheduleRepr {
 public:
  CalendarQueueRepr(const StreamTable& table, const Comparator& cmp,
                    CostHook& hook, SimAddr base,
                    sim::Time bucket_width = sim::Time::ms(10))
      : table_{table}, cmp_{cmp}, hook_{&hook}, base_{base},
        width_ns_{bucket_width.raw_ns()} {}

  void insert(StreamId id) override {
    const std::int64_t key = bucket_of(id);
    calendar_[key].push_back(id);
    if (id >= bucket_of_stream_.size()) bucket_of_stream_.resize(id + 1, 0);
    bucket_of_stream_[id] = key;
  }

  void remove(StreamId id) override {
    const std::int64_t key = bucket_of_stream_[id];
    auto it = calendar_.find(key);
    assert(it != calendar_.end());
    std::erase(it->second, id);
    if (it->second.empty()) calendar_.erase(it);
  }

  void update(StreamId id) override {
    const std::int64_t key = bucket_of(id);
    if (key == bucket_of_stream_[id]) return;  // tolerance-only change
    remove(id);
    insert(id);
  }

  std::optional<StreamId> pick() override {
    if (calendar_.empty()) return std::nullopt;
    // The earliest bucket holds the earliest deadline, but the full winner
    // could be a deadline-tied stream in the same bucket only (rule 1 is
    // deadline-major), so one bucket scan suffices.
    const auto& bucket = calendar_.begin()->second;
    StreamId best = bucket.front();
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      hook_->mem(base_ + i * 8);
      const StreamId s = bucket[i];
      if (s != best &&
          cmp_.precedes(table_.view(s), s, table_.view(best), best)) {
        best = s;
      }
    }
    return best;
  }

  std::optional<StreamId> earliest_deadline() override {
    if (calendar_.empty()) return std::nullopt;
    const auto& bucket = calendar_.begin()->second;
    StreamId best = bucket.front();
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      hook_->mem(base_ + i * 8);
      const StreamId s = bucket[i];
      const auto ds = table_.view(s).next_deadline;
      const auto db = table_.view(best).next_deadline;
      if (ds < db || (ds == db && s < best)) best = s;
    }
    return best;
  }

  const char* name() const override { return "calendar-queue"; }

 private:
  [[nodiscard]] std::int64_t bucket_of(StreamId id) const {
    return table_.view(id).next_deadline.raw_ns() / width_ns_;
  }

  const StreamTable& table_;
  const Comparator& cmp_;
  CostHook* hook_;
  SimAddr base_;
  std::int64_t width_ns_;
  std::map<std::int64_t, std::vector<StreamId>> calendar_;
  std::vector<std::int64_t> bucket_of_stream_;
};

}  // namespace

const char* to_string(ReprKind kind) {
  switch (kind) {
    case ReprKind::kDualHeap: return "dual-heap";
    case ReprKind::kSingleHeap: return "single-heap";
    case ReprKind::kSortedList: return "sorted-list";
    case ReprKind::kFcfs: return "fcfs";
    case ReprKind::kCalendarQueue: return "calendar-queue";
  }
  return "?";
}

std::unique_ptr<ScheduleRepr> make_repr(ReprKind kind, const StreamTable& table,
                                        const Comparator& cmp, CostHook& hook,
                                        SimAddr heap_base) {
  switch (kind) {
    case ReprKind::kDualHeap:
      return std::make_unique<DualHeapRepr>(table, cmp, hook, heap_base);
    case ReprKind::kSingleHeap:
      return std::make_unique<SingleHeapRepr>(table, cmp, hook, heap_base);
    case ReprKind::kSortedList:
      return std::make_unique<SortedListRepr>(table, cmp, hook, heap_base);
    case ReprKind::kFcfs:
      return std::make_unique<FcfsRepr>(table, hook, heap_base);
    case ReprKind::kCalendarQueue:
      return std::make_unique<CalendarQueueRepr>(table, cmp, hook, heap_base);
  }
  return nullptr;
}

}  // namespace nistream::dwcs
