#include "dwcs/repr.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <list>

namespace nistream::dwcs {
namespace {

// Named heap comparators (IndexedHeap is templated on the comparator, so
// these compile to direct calls on the sift paths — no std::function).
// Charges flow through the Comparator they hold: a comparator built over the
// scheduler's hook charges the modeled arithmetic, one built over the null
// hook orders silently.

/// Rule-1 ordering with id tie-break (the Figure 4(a) deadline heap).
/// Deliberately uncharged, as in the paper model: the deadline compare cost
/// is charged by the callers that walk the heap, not by its maintenance.
struct DeadlineIdLess {
  const StreamTable* table;
  bool operator()(StreamId a, StreamId b) const {
    const auto& va = table->view(a);
    const auto& vb = table->view(b);
    if (va.next_deadline != vb.next_deadline) {
      return va.next_deadline < vb.next_deadline;
    }
    return a < b;
  }
};

/// Tolerance-domain ordering (rules 2-4 + id), charged through `cmp`.
struct ToleranceLess {
  const StreamTable* table;
  const Comparator* cmp;
  bool operator()(StreamId a, StreamId b) const {
    return cmp->tolerance_precedes(table->view(a), a, table->view(b), b);
  }
};

/// Full precedence (rules 1-5), charged through `cmp`.
struct FullLess {
  const StreamTable* table;
  const Comparator* cmp;
  bool operator()(StreamId a, StreamId b) const {
    return cmp->precedes(table->view(a), a, table->view(b), b);
  }
};

/// Figure 4(a): deadline heap + loss-tolerance heap. The deadline heap
/// resolves rule 1; ties at the minimum deadline are broken by the tolerance
/// ordering, which the tolerance heap keeps ready (its top is the globally
/// most tolerance-urgent stream, so the common all-deadlines-equal case is
/// O(1) after the heaps are maintained).
///
/// Tie-break slow path: alongside the two modeled heaps, a third,
/// *uncharged* heap (order_) maintains the full rule-1..5 order, so when the
/// tolerance-heap top does not share the minimum deadline, the winner is its
/// top — O(1), instead of the O(n) scan of the raw deadline heap the model
/// describes. Two-clock discipline (docs/performance.md): when an accounted
/// hook is attached, the modeled O(n) tie scan is still *replayed* so every
/// charged cycle/word of Tables 1-2 stays bit-identical; on null-hook
/// (wall-clock) runs the replay is skipped.
class DualHeapRepr final : public ScheduleRepr {
 public:
  DualHeapRepr(const StreamTable& table, const Comparator& cmp, CostHook& hook,
               SimAddr base)
      : table_{table},
        cmp_{cmp},
        hook_{&hook},
        charged_{hook.accounted()},
        quiet_cmp_{cmp.mode(), null_cost_hook()},
        deadline_heap_{DeadlineIdLess{&table}, hook, base},
        tolerance_heap_{ToleranceLess{&table, &cmp}, hook, base + 0x10000},
        order_{FullLess{&table, &quiet_cmp_}, null_cost_hook(), 0} {}

  // On wall-clock (null hook) runs the tolerance heap is never consulted:
  // pick() goes straight to the full-order shadow heap, whose top is exactly
  // the dual-heap answer (rule 1, tie-broken by the tolerance order — the
  // charged replay below asserts this equivalence on instrumented runs). So
  // its maintenance — the most expensive of the three heaps, a fraction
  // compare per sift level — is skipped outright when nothing is charged.
  void insert(StreamId id) override {
    deadline_heap_.push(id);
    if (charged_) tolerance_heap_.push(id);
    order_.push(id);
  }
  void remove(StreamId id) override {
    deadline_heap_.erase(id);
    if (charged_) tolerance_heap_.erase(id);
    order_.erase(id);
  }
  void update(StreamId id) override {
    deadline_heap_.update(id);
    if (charged_) tolerance_heap_.update(id);
    order_.update(id);
  }
  void reserve(std::size_t n) override {
    deadline_heap_.reserve(n);
    if (charged_) tolerance_heap_.reserve(n);
    order_.reserve(n);
  }

  std::optional<StreamId> pick() override {
    if (!charged_) {
      if (order_.empty()) return std::nullopt;
      return order_.top_unchecked();
    }
    const auto top = deadline_heap_.top();
    if (!top) return std::nullopt;
    // Fast path: if the tolerance heap's top shares the minimum deadline it
    // is the answer outright (it beats every other deadline-tied stream in
    // the tolerance order).
    const sim::Time dmin = table_.view(*top).next_deadline;
    const auto tol_top = tolerance_heap_.top();
    if (tol_top && table_.view(*tol_top).next_deadline == dmin) return tol_top;
    // Slow path: the full-order shadow heap has the deadline-tie winner on
    // top (its order is deadline-major, then tolerance) — O(1).
    const StreamId best = order_.top_unchecked();
    if (charged_) {
      // Replay the modeled tie scan of the raw deadline heap so the charged
      // cost stream (memory words, tolerance compares) is bit-identical to
      // the pre-optimization implementation that Tables 1-2 were calibrated
      // against. Instrumented runs are small-n paper reproductions, so the
      // O(n) here is irrelevant to wall-clock scale.
      StreamId model_best = *top;
      for (std::size_t i = 0; i < deadline_heap_.raw().size(); ++i) {
        deadline_heap_.touch(i);
        const StreamId s = deadline_heap_.raw()[i];
        if (s == model_best) continue;
        if (table_.view(s).next_deadline != dmin) continue;
        if (cmp_.tolerance_precedes(table_.view(s), s, table_.view(model_best),
                                    model_best)) {
          model_best = s;
        }
      }
      assert(model_best == best);
      (void)model_best;
    }
    return best;
  }

  std::optional<StreamId> earliest_deadline() override {
    return deadline_heap_.top();
  }

  const char* name() const override { return "dual-heap"; }

 private:
  const StreamTable& table_;
  const Comparator& cmp_;
  CostHook* hook_;
  bool charged_;  // cached hook.accounted(); false only for the null hook
  Comparator quiet_cmp_;  // same arithmetic mode, null hook (order_ only)
  IndexedHeap<DeadlineIdLess> deadline_heap_;
  IndexedHeap<ToleranceLess> tolerance_heap_;
  IndexedHeap<FullLess> order_;
};

/// One heap under the full rule-1..5 comparator.
class SingleHeapRepr final : public ScheduleRepr {
 public:
  SingleHeapRepr(const StreamTable& table, const Comparator& cmp,
                 CostHook& hook, SimAddr base)
      : heap_{FullLess{&table, &cmp}, hook, base},
        deadline_heap_{DeadlineIdLess{&table}, hook, base + 0x10000} {}

  void insert(StreamId id) override {
    heap_.push(id);
    deadline_heap_.push(id);
  }
  void remove(StreamId id) override {
    heap_.erase(id);
    deadline_heap_.erase(id);
  }
  void update(StreamId id) override {
    heap_.update(id);
    deadline_heap_.update(id);
  }
  void reserve(std::size_t n) override {
    heap_.reserve(n);
    deadline_heap_.reserve(n);
  }
  std::optional<StreamId> pick() override { return heap_.top(); }
  std::optional<StreamId> earliest_deadline() override {
    return deadline_heap_.top();
  }
  const char* name() const override { return "single-heap"; }

 private:
  IndexedHeap<FullLess> heap_;
  IndexedHeap<DeadlineIdLess> deadline_heap_;
};

/// Insertion-sorted list under the full comparator.
class SortedListRepr final : public ScheduleRepr {
 public:
  SortedListRepr(const StreamTable& table, const Comparator& cmp,
                 CostHook& hook, SimAddr base)
      : table_{table},
        cmp_{cmp},
        hook_{&hook},
        charged_{hook.accounted()},
        base_{base} {}

  void insert(StreamId id) override {
    auto it = list_.begin();
    std::size_t idx = 0;
    for (; it != list_.end(); ++it, ++idx) {
      if (charged_) hook_->mem(base_ + idx * 8);
      if (cmp_.precedes(table_.view(id), id, table_.view(*it), *it)) break;
    }
    list_.insert(it, id);
  }
  void remove(StreamId id) override { list_.remove(id); }
  void update(StreamId id) override {
    remove(id);
    insert(id);
  }
  std::optional<StreamId> pick() override {
    if (list_.empty()) return std::nullopt;
    if (charged_) hook_->mem(base_);
    return list_.front();
  }
  std::optional<StreamId> earliest_deadline() override {
    // The full order is deadline-major (rule 1), so the front has the
    // earliest deadline — but among deadline ties the contract is lowest id
    // (matching the heaps), not best tolerance, so scan the tied prefix.
    if (list_.empty()) return std::nullopt;
    const sim::Time dmin = table_.view(list_.front()).next_deadline;
    StreamId best = list_.front();
    std::size_t idx = 0;
    for (const StreamId s : list_) {
      if (charged_) hook_->mem(base_ + idx++ * 8);
      if (table_.view(s).next_deadline != dmin) break;
      best = std::min(best, s);
    }
    return best;
  }
  const char* name() const override { return "sorted-list"; }

 private:
  const StreamTable& table_;
  const Comparator& cmp_;
  CostHook* hook_;
  bool charged_;  // cached hook.accounted(); false only for the null hook
  SimAddr base_;
  std::list<StreamId> list_;
};

/// Arrival order of head packets; deliberately attribute-blind (paper
/// §3.1.1: "FCFS circular buffers"). earliest_deadline() still answers
/// truthfully so the late-drop machinery keeps working.
class FcfsRepr final : public ScheduleRepr {
 public:
  FcfsRepr(const StreamTable& table, CostHook& hook, SimAddr base)
      : table_{table}, hook_{&hook}, charged_{hook.accounted()}, base_{base} {}

  void insert(StreamId id) override { members_.push_back(id); }
  void remove(StreamId id) override { std::erase(members_, id); }
  void update(StreamId) override {}  // arrival order does not change
  void reserve(std::size_t n) override { members_.reserve(n); }

  std::optional<StreamId> pick() override {
    std::optional<StreamId> best;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (charged_) hook_->mem(base_ + i * 8);
      const StreamId s = members_[i];
      if (!best || table_.view(s).head_enqueued_at <
                       table_.view(*best).head_enqueued_at) {
        best = s;
      }
    }
    return best;
  }

  std::optional<StreamId> earliest_deadline() override {
    std::optional<StreamId> best;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (charged_) hook_->mem(base_ + i * 8);
      const StreamId s = members_[i];
      if (!best ||
          table_.view(s).next_deadline < table_.view(*best).next_deadline ||
          (table_.view(s).next_deadline == table_.view(*best).next_deadline &&
           s < *best)) {
        best = s;
      }
    }
    return best;
  }

  const char* name() const override { return "fcfs"; }

 private:
  const StreamTable& table_;
  CostHook* hook_;
  bool charged_;  // cached hook.accounted(); false only for the null hook
  SimAddr base_;
  std::vector<StreamId> members_;
};

/// Deadline-bucketed calendar queue: streams hash into day buckets by
/// deadline; pick scans the earliest non-empty day and breaks ties with the
/// full comparator. Bucket width trades bucket-scan length against
/// bucket-chain length.
///
/// The calendar is a circular bucket array (a "timing wheel"), not a
/// std::map: a day maps to bucket `day mod n_buckets`, entries carry their
/// day so colliding days share a bucket, and the earliest populated day is
/// found by walking forward from a cached lower bound (`min_day_`, the
/// classic calendar-queue year scan). The wheel doubles when load exceeds
/// two entries per bucket. Charged costs are unchanged from the map-based
/// implementation: only the entries of the minimum day are charged, in
/// insertion order, exactly as the old per-day vectors were; wheel
/// bookkeeping (collision skips, day scans, resizes) is host work.
class CalendarQueueRepr final : public ScheduleRepr {
 public:
  CalendarQueueRepr(const StreamTable& table, const Comparator& cmp,
                    CostHook& hook, SimAddr base,
                    sim::Time bucket_width = sim::Time::ms(10))
      : table_{table}, cmp_{cmp}, hook_{&hook}, charged_{hook.accounted()},
        base_{base}, width_ns_{bucket_width.raw_ns()}, buckets_{64} {}

  void insert(StreamId id) override {
    if (id >= day_of_stream_.size()) day_of_stream_.resize(id + 1, kAbsent);
    assert(day_of_stream_[id] == kAbsent);
    if (count_ + 1 > buckets_.size() * 2) grow(buckets_.size() * 2);
    const std::int64_t day = day_of(id);
    buckets_[index(day)].push_back({day, id});
    day_of_stream_[id] = day;
    if (count_ == 0 || day < min_day_) min_day_ = day;
    ++count_;
  }

  void remove(StreamId id) override {
    // Guarded: removing an id that was never inserted (or whose entry was
    // already evicted) is a no-op instead of an out-of-bounds index.
    if (id >= day_of_stream_.size() || day_of_stream_[id] == kAbsent) return;
    auto& bucket = buckets_[index(day_of_stream_[id])];
    std::erase_if(bucket, [id](const Entry& e) { return e.id == id; });
    day_of_stream_[id] = kAbsent;
    --count_;
  }

  void update(StreamId id) override {
    // A stream whose entry was already evicted (or never inserted) is
    // re-admitted under its current deadline rather than indexing a stale
    // bucket key.
    if (id >= day_of_stream_.size() || day_of_stream_[id] == kAbsent) {
      insert(id);
      return;
    }
    const std::int64_t day = day_of(id);
    if (day == day_of_stream_[id]) return;  // tolerance-only change
    remove(id);
    insert(id);
  }

  void reserve(std::size_t n) override {
    day_of_stream_.reserve(n);
    std::size_t target = buckets_.size();
    while (n > target * 2) target *= 2;
    if (target != buckets_.size()) grow(target);
  }

  std::optional<StreamId> pick() override {
    if (count_ == 0) return std::nullopt;
    advance_min_day();
    // The earliest day holds the earliest deadline, but the full winner
    // could be a deadline-tied stream in the same day only (rule 1 is
    // deadline-major), so one day scan suffices.
    StreamId best = kInvalidStream;
    std::size_t charged = 0;
    for (const Entry& e : buckets_[index(min_day_)]) {
      if (e.day != min_day_) continue;  // wheel collision from another year
      if (charged_) hook_->mem(base_ + charged++ * 8);
      if (best == kInvalidStream) {
        best = e.id;
      } else if (cmp_.precedes(table_.view(e.id), e.id, table_.view(best),
                               best)) {
        best = e.id;
      }
    }
    assert(best != kInvalidStream);
    return best;
  }

  std::optional<StreamId> earliest_deadline() override {
    if (count_ == 0) return std::nullopt;
    advance_min_day();
    StreamId best = kInvalidStream;
    std::size_t charged = 0;
    for (const Entry& e : buckets_[index(min_day_)]) {
      if (e.day != min_day_) continue;
      if (charged_) hook_->mem(base_ + charged++ * 8);
      if (best == kInvalidStream) {
        best = e.id;
        continue;
      }
      const auto ds = table_.view(e.id).next_deadline;
      const auto db = table_.view(best).next_deadline;
      if (ds < db || (ds == db && e.id < best)) best = e.id;
    }
    assert(best != kInvalidStream);
    return best;
  }

  const char* name() const override { return "calendar-queue"; }

 private:
  static constexpr std::int64_t kAbsent = std::numeric_limits<std::int64_t>::min();

  struct Entry {
    std::int64_t day;
    StreamId id;
  };

  [[nodiscard]] std::int64_t day_of(StreamId id) const {
    return table_.view(id).next_deadline.raw_ns() / width_ns_;
  }
  [[nodiscard]] std::size_t index(std::int64_t day) const {
    return static_cast<std::size_t>(day) & (buckets_.size() - 1);
  }

  /// Advance `min_day_` (a lower bound) to the earliest populated day.
  /// Precondition: count_ > 0.
  void advance_min_day() {
    const auto wheel = static_cast<std::int64_t>(buckets_.size());
    for (std::int64_t d = min_day_; d < min_day_ + wheel; ++d) {
      for (const Entry& e : buckets_[index(d)]) {
        if (e.day == d) {
          min_day_ = d;
          return;
        }
      }
    }
    // Every entry lives beyond one wheel revolution from the bound (sparse
    // deadlines): recompute exactly. Rare, O(n).
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const auto& bucket : buckets_) {
      for (const Entry& e : bucket) best = std::min(best, e.day);
    }
    min_day_ = best;
  }

  void grow(std::size_t n_buckets) {
    std::vector<std::vector<Entry>> next{n_buckets};
    for (auto& bucket : buckets_) {
      for (const Entry& e : bucket) {
        next[static_cast<std::size_t>(e.day) & (n_buckets - 1)].push_back(e);
      }
    }
    buckets_ = std::move(next);
  }

  const StreamTable& table_;
  const Comparator& cmp_;
  CostHook* hook_;
  bool charged_;  // cached hook.accounted(); false only for the null hook
  SimAddr base_;
  std::int64_t width_ns_;
  std::vector<std::vector<Entry>> buckets_;  // size is a power of two
  std::vector<std::int64_t> day_of_stream_;  // kAbsent when not queued
  std::size_t count_ = 0;
  std::int64_t min_day_ = 0;
};

}  // namespace

const char* to_string(ReprKind kind) {
  switch (kind) {
    case ReprKind::kDualHeap: return "dual-heap";
    case ReprKind::kSingleHeap: return "single-heap";
    case ReprKind::kSortedList: return "sorted-list";
    case ReprKind::kFcfs: return "fcfs";
    case ReprKind::kCalendarQueue: return "calendar-queue";
  }
  return "?";
}

std::unique_ptr<ScheduleRepr> make_repr(ReprKind kind, const StreamTable& table,
                                        const Comparator& cmp, CostHook& hook,
                                        SimAddr heap_base) {
  switch (kind) {
    case ReprKind::kDualHeap:
      return std::make_unique<DualHeapRepr>(table, cmp, hook, heap_base);
    case ReprKind::kSingleHeap:
      return std::make_unique<SingleHeapRepr>(table, cmp, hook, heap_base);
    case ReprKind::kSortedList:
      return std::make_unique<SortedListRepr>(table, cmp, hook, heap_base);
    case ReprKind::kFcfs:
      return std::make_unique<FcfsRepr>(table, hook, heap_base);
    case ReprKind::kCalendarQueue:
      return std::make_unique<CalendarQueueRepr>(table, cmp, hook, heap_base);
  }
  return nullptr;
}

}  // namespace nistream::dwcs
