// Baseline packet schedulers: EDF, static priority, round-robin.
//
// These implement the same PacketScheduler interface and deadline/drop
// machinery as DWCS but none of its window-constraint logic, so experiments
// can quantify exactly what the loss-tolerance mechanism buys (the
// ablate_policy bench counts window violations under overload for each
// policy via the WindowViolationMonitor).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "dwcs/scheduler.hpp"
#include "dwcs/types.hpp"

namespace nistream::dwcs {

/// Common stream bookkeeping shared by the baselines.
class BaselineScheduler : public PacketScheduler {
 public:
  explicit BaselineScheduler(std::size_t ring_capacity = 256)
      : ring_capacity_{ring_capacity} {}

  StreamId create_stream(const StreamParams& params, sim::Time now) override;
  bool enqueue(StreamId id, const FrameDescriptor& frame, sim::Time now) override;
  std::optional<Dispatch> schedule_next(sim::Time now) override;

  [[nodiscard]] const StreamStats& stats(StreamId id) const override {
    return streams_[id].stats;
  }
  [[nodiscard]] std::size_t backlog(StreamId id) const override {
    return streams_[id].ring->size();
  }
  [[nodiscard]] std::size_t stream_count() const override {
    return streams_.size();
  }

 protected:
  struct StreamState {
    StreamParams params;
    sim::Time next_deadline;
    std::unique_ptr<FrameRing> ring;
    StreamStats stats;
  };

  /// Policy: choose among streams with backlog; nullopt when none.
  [[nodiscard]] virtual std::optional<StreamId> pick(sim::Time now) = 0;

  [[nodiscard]] const std::vector<StreamState>& streams() const {
    return streams_;
  }

 private:
  void drop_late_lossy(sim::Time now);

  std::size_t ring_capacity_;
  std::vector<StreamState> streams_;
};

/// Earliest-deadline-first.
class EdfScheduler final : public BaselineScheduler {
 public:
  using BaselineScheduler::BaselineScheduler;
  [[nodiscard]] const char* name() const override { return "edf"; }

 protected:
  std::optional<StreamId> pick(sim::Time) override;
};

/// Fixed priority by creation order (stream 0 most important).
class StaticPriorityScheduler final : public BaselineScheduler {
 public:
  using BaselineScheduler::BaselineScheduler;
  [[nodiscard]] const char* name() const override { return "static-priority"; }

 protected:
  std::optional<StreamId> pick(sim::Time) override;
};

/// Round-robin over backlogged streams.
class RoundRobinScheduler final : public BaselineScheduler {
 public:
  using BaselineScheduler::BaselineScheduler;
  [[nodiscard]] const char* name() const override { return "round-robin"; }

 protected:
  std::optional<StreamId> pick(sim::Time) override;

 private:
  StreamId cursor_ = 0;
};

}  // namespace nistream::dwcs
