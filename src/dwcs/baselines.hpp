// Baseline packet schedulers: EDF, static priority, round-robin.
//
// These implement the same PacketScheduler interface and deadline/drop
// machinery as DWCS but none of its window-constraint logic, so experiments
// can quantify exactly what the loss-tolerance mechanism buys (the
// ablate_policy bench counts window violations under overload for each
// policy via the WindowViolationMonitor).
//
// EDF and static priority are not hand-written scan loops anymore: the base
// class carries a PIFO rank engine (pifo.hpp) and those baselines are the
// engine under EdfRank / StaticPriorityRank — the same rank structs
// DwcsScheduler runs under ReprKind::kPifo, so a baseline and the kPifo
// ablation cell literally share their ordering code. Round-robin is not
// expressible as a rank over per-stream state alone (its order depends on
// the cursor, i.e. on service history of OTHER streams), so it keeps its
// cursor scan.
#pragma once

#include <cassert>
#include <memory>
#include <optional>
#include <vector>

#include "dwcs/scheduler.hpp"
#include "dwcs/types.hpp"

namespace nistream::dwcs {

/// Common stream bookkeeping shared by the baselines.
class BaselineScheduler : public PacketScheduler, private StreamTable {
 public:
  /// Engine-less baseline: the subclass must override pick().
  explicit BaselineScheduler(std::size_t ring_capacity = 256);

  StreamId create_stream(const StreamParams& params, sim::Time now) override;
  bool enqueue(StreamId id, const FrameDescriptor& frame, sim::Time now) override;
  std::optional<Dispatch> schedule_next(sim::Time now) override;

  [[nodiscard]] const StreamStats& stats(StreamId id) const override {
    return streams_[id].stats;
  }
  [[nodiscard]] std::size_t backlog(StreamId id) const override {
    return streams_[id].ring->size();
  }
  [[nodiscard]] std::size_t stream_count() const override {
    return streams_.size();
  }

 protected:
  /// Rank-engine-backed baseline: pick() defaults to `policy`'s PIFO order
  /// over the backlogged streams.
  BaselineScheduler(PolicyKind policy, std::size_t ring_capacity);

  struct StreamState {
    StreamParams params;
    std::unique_ptr<FrameRing> ring;
    StreamStats stats;
    bool has_backlog = false;  // stream currently in the rank engine
  };

  /// Policy: choose among streams with backlog; nullopt when none. Defaults
  /// to the rank engine's pick; engine-less baselines must override.
  [[nodiscard]] virtual std::optional<StreamId> pick(sim::Time now);

  [[nodiscard]] const std::vector<StreamState>& streams() const {
    return streams_;
  }
  /// Current deadline of `id` (dynamic state lives in the view table the
  /// rank engine indexes, not in StreamState).
  [[nodiscard]] sim::Time deadline(StreamId id) const {
    return views_[id].next_deadline;
  }

 private:
  void drop_late_lossy(sim::Time now);

  std::size_t ring_capacity_;
  Comparator comparator_;  // uncharged; the engine signature requires one
  std::vector<StreamState> streams_;
  std::vector<StreamView> views_;  // parallel to streams_; backs StreamTable
  std::unique_ptr<ScheduleRepr> repr_;  // null: subclass pick() scans rings
};

/// Earliest-deadline-first — the rank engine under EdfRank.
class EdfScheduler final : public BaselineScheduler {
 public:
  explicit EdfScheduler(std::size_t ring_capacity = 256)
      : BaselineScheduler{PolicyKind::kEdf, ring_capacity} {}
  [[nodiscard]] const char* name() const override { return "edf"; }
};

/// Fixed priority by creation order (stream 0 most important) — the rank
/// engine under StaticPriorityRank.
class StaticPriorityScheduler final : public BaselineScheduler {
 public:
  explicit StaticPriorityScheduler(std::size_t ring_capacity = 256)
      : BaselineScheduler{PolicyKind::kStaticPriority, ring_capacity} {}
  [[nodiscard]] const char* name() const override { return "static-priority"; }
};

/// Round-robin over backlogged streams (cursor scan; see header comment for
/// why this one is not a rank policy).
class RoundRobinScheduler final : public BaselineScheduler {
 public:
  using BaselineScheduler::BaselineScheduler;
  [[nodiscard]] const char* name() const override { return "round-robin"; }

 protected:
  std::optional<StreamId> pick(sim::Time) override;

 private:
  StreamId cursor_ = 0;
};

}  // namespace nistream::dwcs
