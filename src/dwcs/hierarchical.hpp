// Sharded multi-core DWCS: N per-core dual heaps under a tiny root arbiter.
//
// The paper's i960 co-processor is single-core, so every representation in
// repr.cpp models ONE scheduling engine over the whole stream population —
// and a single heap's O(log n) decision path hits a cache wall an order of
// magnitude before the million-stream target (BENCH_scale.json: dual-heap
// decisions/s collapse 2.89M -> 764k from 1k to 100k streams). Modern NIs
// are not single-core; following *The Distributed Network Processor*
// (per-core engines plus an on-chip interconnect) and the two-level
// "winners feed a small root queue" shape of *Programmable Packet
// Scheduling* (PAPERS.md), this representation shards the stream population
// across N simulated NI cores:
//
//  * Each core runs its own allocation-free schedule engine over its shard
//    (a DualHeapRepr under DWCS, a PifoRepr<Rank> under any other rank
//    policy — the layer shards ANY total rank order, not just rules 1-5).
//    Shard assignment is a stable hash of the stream id — rebalance-free,
//    identical across runs and boards (shard_of below).
//  * A root arbiter keeps two N-entry indexed heaps whose elements are
//    SHARD indices, ordered by each shard's cached winner under the full
//    rule-1..5 precedence (pick) and by each shard's cached earliest
//    deadline under the rule-1+id order (late-packet processing).
//
// One decision is: read the root top (O(1)), mutate that stream's shard
// (O(log shard_size)), re-decide the shard's winner (O(1), its dual heap
// keeps it on top) and re-sift the two root entries (O(log N)). The hot
// path is therefore O(log(n/N)) + O(log N) per decision instead of
// O(log n) over one n-entry structure. Measured on one host core that is
// roughly a wash — sharding trims the deep (cache-cold) sift levels but
// pays root maintenance and a spread working set, so the serial bench
// shows a tie at 1M streams, not a win (docs/performance.md, "Sharded NI
// scheduling", has the profile). The structural win is what the serial
// bench cannot show: the O(log(n/N)) shard work is per-core-parallel and
// per-core cache-resident on a real multi-core NI, and only the O(log N)
// root arbiter is serialized.
//
// Decision identity: the full precedence order is total (rule 5 breaks
// every tie by stream id), so the minimum over per-shard minima is the
// global minimum for ANY shard count — pick() and earliest_deadline()
// return exactly what DualHeapRepr returns, decision for decision. The
// 1-shard configuration is the degenerate proof anchor (one dual heap, one
// root entry) and is differentially tested against DualHeapRepr; multi-
// shard identity is tested on top of it.
//
// Cross-core cost model: when a mutation on core c changes what the root
// sees (the shard's winner or earliest-deadline entry), shipping that
// update over the on-chip interconnect costs a fixed
// HierarchicalParams::hop_cycles (default 0 — decision-identity runs add
// nothing; the ablation charges the hop per PAPERS.md's distributed-NP
// interconnect model).
#pragma once

#include <memory>
#include <vector>

#include "dwcs/dual_heap.hpp"
#include "dwcs/repr.hpp"

namespace nistream::dwcs {

class ShardExecTrace;
class ShardCycleMeter;

/// Simulated card-memory stride between per-core heap regions. A per-core
/// engine occupies two 0x10000 regions (rank/deadline or deadline/tolerance
/// heap); each core gets its own pair so cache models see per-core working
/// sets, not one shared array. The two root heaps occupy the stride after
/// the last core's. Public so the cycle meter (shard_exec.hpp) can route a
/// heap access to the owning core's cache by address alone.
inline constexpr SimAddr kCoreStride = 0x20000;

/// Stable shard assignment: a splitmix64 finalizer over the stream id,
/// reduced mod `shards`. Pure function of (id, shards) — the same stream
/// set lands on the same cores in every run, on every board, with no
/// rebalancing state to checkpoint or ship on failover.
[[nodiscard]] constexpr std::uint32_t shard_of(StreamId id,
                                               std::uint32_t shards) {
  std::uint64_t x = static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % shards);
}

class HierarchicalScheduler final : public ScheduleRepr {
 public:
  /// `policy` selects the rank order of the whole sharded machine: the
  /// per-core engines (DualHeapRepr for DWCS unless params.pifo_cores, a
  /// PifoRepr of the policy's rank struct otherwise) and the root arbiter's
  /// winner order. The earliest-deadline side is policy-independent.
  HierarchicalScheduler(const StreamTable& table, const Comparator& cmp,
                        CostHook& hook, SimAddr base,
                        const HierarchicalParams& params,
                        PolicyKind policy = PolicyKind::kDwcs);

  void insert(StreamId id) override;
  void remove(StreamId id) override;
  void update(StreamId id) override;
  void reserve(std::size_t n) override;
  void on_charge(StreamId id) override;
  [[nodiscard]] std::optional<StreamId> pick() override;
  [[nodiscard]] std::optional<StreamId> earliest_deadline() override;
  [[nodiscard]] const char* name() const override { return "hierarchical"; }

  [[nodiscard]] std::uint32_t shards() const {
    return static_cast<std::uint32_t>(cores_.size());
  }
  /// Streams currently backlogged on core `s` (tests, load introspection).
  [[nodiscard]] std::size_t shard_population(std::uint32_t s) const {
    return population_[s];
  }

  /// Simulated-parallel execution (shard_exec.hpp): report every mutation's
  /// cycle split — per-shard engine work vs root-arbiter work — to `trace`,
  /// measured as deltas of `meter`, which MUST be the CostHook this scheduler
  /// was constructed over (the deltas bracket this scheduler's own charges).
  /// Passing nullptrs detaches. Attach AFTER bulk setup, or the setup
  /// mutations become replayed work items too.
  void set_exec_trace(ShardExecTrace* trace, ShardCycleMeter* meter) {
    trace_ = trace;
    meter_ = meter;
  }

  /// Interconnect hops charged so far (charged runs with hop_cycles > 0 on
  /// a multi-shard board; 0 otherwise). The parallel-mode identity suite
  /// asserts this equals the serial scheduler's count for the same workload.
  [[nodiscard]] std::uint64_t hops_charged() const { return hops_charged_; }

  /// The shared tenant-scope ledger (kTenantDwcs only): install scope and
  /// weight assignments here BEFORE inserting the affected streams — under
  /// kTenantDwcs the scope IS the shard assignment (see shard_for).
  [[nodiscard]] const std::shared_ptr<TenantDwcsState>& tenant_state() {
    return tenant_.state;
  }

 private:
  /// Core that owns `id`. Hash sharding by default; under kTenantDwcs the
  /// stream's tenant SCOPE is the shard, because a scope is a serialization
  /// domain here: all of a scope's streams must live in one engine so that
  /// within-engine compares fall through to pure DWCS (stable per-stream
  /// keys) and the shared scope tag only ranks ROOT entries — where the one
  /// entry a charge moves is exactly the one shard refresh() re-sifts. Run
  /// with shards >= distinct scopes; scopes colliding mod `shards` would
  /// share an engine and forfeit the isolation guarantee between them (see
  /// TenantDwcsRank's structural-requirement note).
  [[nodiscard]] std::uint32_t shard_for(StreamId id) const {
    return policy_ == PolicyKind::kTenantDwcs ? tenant_.scope(id) % shards()
                                              : shard_of(id, shards());
  }

  // Root-heap comparators. Elements are shard indices; keys are the cached
  // winner / earliest-deadline stream of each shard, read through the
  // shared stream table. Root compares charge through the scheduler's
  // comparator exactly like any other heap compare: the root arbiter is
  // modeled as one more core doing real work, not free magic. The winner
  // order is the active rank policy's (winner_precedes dispatches on it; the
  // minimum over per-shard minima is the global minimum for any total rank
  // order, not just DWCS's).
  struct RootWinnerLess {
    const HierarchicalScheduler* h;
    bool operator()(StreamId sa, StreamId sb) const {
      return h->winner_precedes(h->winner_[sa], h->winner_[sb]);
    }
  };
  struct RootDeadlineLess {
    const HierarchicalScheduler* h;
    bool operator()(StreamId sa, StreamId sb) const {
      return DeadlineIdLess{&h->table_}(h->edl_[sa], h->edl_[sb]);
    }
  };

  /// The active policy's rank order over two shard winners (both valid ids).
  /// For DWCS this is exactly cmp_.precedes — charge-identical to the
  /// pre-rank-engine root arbiter; the other policies' orders are uncharged
  /// like their flat engines.
  [[nodiscard]] bool winner_precedes(StreamId a, StreamId b) const;

  /// Build the engine of one core at `core_base` per the active policy.
  [[nodiscard]] std::unique_ptr<ScheduleRepr> make_core(SimAddr core_base);

  /// Re-decide shard `s` after mutating `mutated` in it, and re-sift its
  /// two root entries. Charges one interconnect hop per root entry whose
  /// content the mutation changed (winner id changed, or the mutated stream
  /// IS the cached entry so its key changed under the root's feet).
  void refresh(std::uint32_t s, StreamId mutated);

  /// Uncharged fast path: mutations only mark their shard dirty; the root
  /// is repaired here, once, at the next query. The common decision cycle
  /// (remove the dispatched stream, re-insert its refilled ring) dirties one
  /// shard twice but pays a single winner recompute + root sift — the same
  /// host-side shortcut licence the uncharged DualHeapRepr uses for its
  /// shadow heap. Charged runs never take this path: their root stays
  /// eagerly consistent so each interconnect hop is charged at the mutation
  /// that caused it, keeping the cycle ledger deterministic.
  void flush_dirty();
  void mark_dirty(std::uint32_t s) {
    if (!dirty_[s]) {
      dirty_[s] = 1;
      dirty_list_.push_back(s);
    }
  }

  const StreamTable& table_;
  const Comparator& cmp_;
  CostHook* hook_;
  bool charged_;  // cached hook.accounted(); false only for the null hook
  std::int64_t hop_cycles_;
  PolicyKind policy_;
  bool pifo_cores_;
  /// WFQ root rank; its WfqState is shared with every per-core engine when
  /// policy_ == kWfq so finish tags are globally comparable (unused, but
  /// cheap, for the other policies).
  WfqRank wfq_;
  /// Tenant-scoped hybrid root rank; same sharing contract as wfq_ — every
  /// core clocks scope finish tags against the one shared ledger when
  /// policy_ == kTenantDwcs.
  TenantDwcsRank tenant_;
  /// Simulated-parallel cycle reporting (set_exec_trace); both null in the
  /// default serial mode.
  ShardExecTrace* trace_ = nullptr;
  ShardCycleMeter* meter_ = nullptr;
  std::uint64_t hops_charged_ = 0;
  std::vector<std::unique_ptr<ScheduleRepr>> cores_;
  std::vector<StreamId> winner_;  // per shard; kInvalidStream when empty
  std::vector<StreamId> edl_;     // per shard; kInvalidStream when empty
  std::vector<std::size_t> population_;  // streams backlogged per shard
  std::vector<std::uint8_t> dirty_;      // uncharged: root entry is stale
  std::vector<std::uint32_t> dirty_list_;  // dirty shards, unordered
  IndexedHeap<RootWinnerLess> root_pick_;
  IndexedHeap<RootDeadlineLess> root_deadline_;
};

}  // namespace nistream::dwcs
