// Pluggable packet-schedule representations.
//
// Paper §3.1.1: "Extensible scheduler design decoupling scheduling analysis
// and schedule representation (data structures). This allows different data
// structures to be used for experimentation (FCFS circular buffers, sorted
// lists, heaps or calendar queues)". Each representation answers the same two
// queries — the overall best stream by the DWCS precedence rules, and the
// earliest-deadline stream for late-packet processing — over the set of
// currently backlogged streams.
//
// * DualHeapRepr     — the paper's Figure 4(a): a deadline heap plus a
//                      loss-tolerance heap; deadline ties are broken with
//                      the tolerance ordering.
// * PifoRepr<Policy> (pifo.hpp) — the programmable rank engine: one heap
//                      under a policy's rank order plus the deadline heap.
//                      kSingleHeap is this engine under the DWCS rank with
//                      its historical name; kPifo selects the rank policy
//                      via PolicyKind (DWCS, EDF, SP, WFQ).
// * SortedListRepr   — insertion-sorted list, O(n) updates, O(1) pick.
// * FcfsRepr         — arrival order of head packets; ignores attributes.
// * CalendarQueueRepr— deadline-bucketed calendar queue.
// * HierarchicalScheduler (hierarchical.hpp) — N per-core engines over
//                      hash shards of the stream population, arbitrated by
//                      an N-entry root heap of per-shard winners (the
//                      sharded multi-core NI model). Cores are dual heaps
//                      for DWCS and PIFO rank engines for any other policy.
//
// All representations must agree with the DWCS rank order on pick() for any
// state (except FCFS, which deliberately ignores the rules, and kPifo under
// a non-DWCS policy, which ranks by ITS rules); that equivalence is a
// property test in tests/dwcs/repr_test.cpp.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dwcs/comparator.hpp"
#include "dwcs/cost.hpp"
#include "dwcs/heap.hpp"
#include "dwcs/types.hpp"
#include "sim/time.hpp"

namespace nistream::dwcs {

/// Read access to per-stream dynamic state, provided by the scheduler.
///
/// Deliberately non-virtual: the provider keeps every StreamView in one
/// contiguous vector and hands it to this base, so the two view() reads in
/// every heap-sift compare are direct indexed loads from a dense array —
/// no virtual dispatch, no pointer chase through per-stream state blocks.
/// The vector is held by pointer, so provider-side growth (reallocation)
/// needs no re-registration.
class StreamTable {
 public:
  explicit StreamTable(const std::vector<StreamView>& views)
      : views_{&views} {}
  [[nodiscard]] const StreamView& view(StreamId id) const {
    return (*views_)[id];
  }

 private:
  const std::vector<StreamView>* views_;
};

class ScheduleRepr {
 public:
  virtual ~ScheduleRepr() = default;
  virtual void insert(StreamId id) = 0;
  virtual void remove(StreamId id) = 0;
  virtual void update(StreamId id) = 0;
  /// Pre-size internal storage for `n` streams (never charged: capacity
  /// planning is host work, not part of the modeled scheduler).
  virtual void reserve(std::size_t /*n*/) {}
  /// The scheduler charged one service to `id` (its head was dispatched).
  /// Stateful rank policies (WFQ virtual time) advance their per-stream
  /// state here; everything else ignores it. Contract: the caller follows
  /// with update(id) or remove(id) before the next pick()/
  /// earliest_deadline(), so this hook never re-sifts on its own.
  virtual void on_charge(StreamId /*id*/) {}
  [[nodiscard]] virtual std::optional<StreamId> pick() = 0;
  [[nodiscard]] virtual std::optional<StreamId> earliest_deadline() = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

enum class ReprKind {
  kDualHeap,
  kSingleHeap,
  kSortedList,
  kFcfs,
  kCalendarQueue,
  kHierarchical,
  kPifo,
};

/// Rank policy of the PIFO engine (pifo.hpp). Consulted by make_repr for
/// ReprKind::kPifo (which rank struct to instantiate the engine with) and
/// ReprKind::kHierarchical (per-core engines plus the root winner order);
/// every other representation is DWCS-only and ignores it.
enum class PolicyKind {
  kDwcs,            // precedence rules 1-5 (comparator.hpp)
  kEdf,             // earliest deadline, id tie-break
  kStaticPriority,  // lowest stream id
  kWfq,             // weighted fair queueing (SCFQ virtual finish times)
  kTenantDwcs,      // WFQ share across tenant scopes, DWCS within a scope
};

/// Knobs of the sharded multi-core representation (hierarchical.hpp). Lives
/// here so the repr-selection machinery (DwcsScheduler::Config, make_repr)
/// can carry it without pulling in the implementation header.
struct HierarchicalParams {
  /// Simulated NI cores; each runs one schedule engine over its stream
  /// shard — a DualHeapRepr for DWCS, a PifoRepr for any other rank policy.
  /// Shard assignment is a stable hash of the stream id (rebalance-free).
  std::uint32_t shards = 8;
  /// Modeled cost of shipping a shard's winner update across the on-chip
  /// interconnect to the root arbiter, charged per changed root entry.
  /// Default 0: decision-identity runs add no cycles the single-core
  /// dual-heap would not charge. Ablatable (hw::InterconnectParams).
  std::int64_t hop_cycles = 0;
  /// Under PolicyKind::kDwcs, run PifoRepr<DwcsRank> cores instead of the
  /// default DualHeapRepr cores. Decision-identical either way (same total
  /// order); the knob exists so the rank-engine-inside-shards combination is
  /// differentially testable.
  bool pifo_cores = false;
};

[[nodiscard]] const char* to_string(ReprKind kind);
[[nodiscard]] const char* to_string(PolicyKind policy);

/// Create a representation. `table` and `cmp` must outlive the result.
/// `heap_base` is the simulated address of the representation's storage.
/// `hier` is consulted only for ReprKind::kHierarchical; `policy` for
/// kPifo and kHierarchical.
[[nodiscard]] std::unique_ptr<ScheduleRepr> make_repr(
    ReprKind kind, const StreamTable& table, const Comparator& cmp,
    CostHook& hook, SimAddr heap_base, const HierarchicalParams& hier = {},
    PolicyKind policy = PolicyKind::kDwcs);

}  // namespace nistream::dwcs
