// Pluggable packet-schedule representations.
//
// Paper §3.1.1: "Extensible scheduler design decoupling scheduling analysis
// and schedule representation (data structures). This allows different data
// structures to be used for experimentation (FCFS circular buffers, sorted
// lists, heaps or calendar queues)". Each representation answers the same two
// queries — the overall best stream by the DWCS precedence rules, and the
// earliest-deadline stream for late-packet processing — over the set of
// currently backlogged streams.
//
// * DualHeapRepr     — the paper's Figure 4(a): a deadline heap plus a
//                      loss-tolerance heap; deadline ties are broken with
//                      the tolerance ordering.
// * SingleHeapRepr   — one heap under the full precedence comparator.
// * SortedListRepr   — insertion-sorted list, O(n) updates, O(1) pick.
// * FcfsRepr         — arrival order of head packets; ignores attributes.
// * CalendarQueueRepr— deadline-bucketed calendar queue.
// * HierarchicalScheduler (hierarchical.hpp) — N per-core dual heaps over
//                      hash shards of the stream population, arbitrated by
//                      an N-entry root heap of per-shard winners (the
//                      sharded multi-core NI model).
//
// All representations must agree with SingleHeapRepr on pick() for any state
// (except FCFS, which deliberately ignores the rules); that equivalence is a
// property test in tests/dwcs/repr_test.cpp.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dwcs/comparator.hpp"
#include "dwcs/cost.hpp"
#include "dwcs/heap.hpp"
#include "dwcs/types.hpp"
#include "sim/time.hpp"

namespace nistream::dwcs {

/// Read access to per-stream dynamic state, provided by the scheduler.
///
/// Deliberately non-virtual: the provider keeps every StreamView in one
/// contiguous vector and hands it to this base, so the two view() reads in
/// every heap-sift compare are direct indexed loads from a dense array —
/// no virtual dispatch, no pointer chase through per-stream state blocks.
/// The vector is held by pointer, so provider-side growth (reallocation)
/// needs no re-registration.
class StreamTable {
 public:
  explicit StreamTable(const std::vector<StreamView>& views)
      : views_{&views} {}
  [[nodiscard]] const StreamView& view(StreamId id) const {
    return (*views_)[id];
  }

 private:
  const std::vector<StreamView>* views_;
};

class ScheduleRepr {
 public:
  virtual ~ScheduleRepr() = default;
  virtual void insert(StreamId id) = 0;
  virtual void remove(StreamId id) = 0;
  virtual void update(StreamId id) = 0;
  /// Pre-size internal storage for `n` streams (never charged: capacity
  /// planning is host work, not part of the modeled scheduler).
  virtual void reserve(std::size_t /*n*/) {}
  [[nodiscard]] virtual std::optional<StreamId> pick() = 0;
  [[nodiscard]] virtual std::optional<StreamId> earliest_deadline() = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

enum class ReprKind {
  kDualHeap,
  kSingleHeap,
  kSortedList,
  kFcfs,
  kCalendarQueue,
  kHierarchical,
};

/// Knobs of the sharded multi-core representation (hierarchical.hpp). Lives
/// here so the repr-selection machinery (DwcsScheduler::Config, make_repr)
/// can carry it without pulling in the implementation header.
struct HierarchicalParams {
  /// Simulated NI cores; each runs a DualHeapRepr over its stream shard.
  /// Shard assignment is a stable hash of the stream id (rebalance-free).
  std::uint32_t shards = 8;
  /// Modeled cost of shipping a shard's winner update across the on-chip
  /// interconnect to the root arbiter, charged per changed root entry.
  /// Default 0: decision-identity runs add no cycles the single-core
  /// dual-heap would not charge. Ablatable (hw::InterconnectParams).
  std::int64_t hop_cycles = 0;
};

[[nodiscard]] const char* to_string(ReprKind kind);

/// Create a representation. `table` and `cmp` must outlive the result.
/// `heap_base` is the simulated address of the representation's storage.
/// `hier` is consulted only for ReprKind::kHierarchical.
[[nodiscard]] std::unique_ptr<ScheduleRepr> make_repr(
    ReprKind kind, const StreamTable& table, const Comparator& cmp,
    CostHook& hook, SimAddr heap_base, const HierarchicalParams& hier = {});

}  // namespace nistream::dwcs
