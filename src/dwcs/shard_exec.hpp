// Cycle metering for simulated-parallel shard execution.
//
// The serial wall-clock bench can never exhibit the multi-core NI's parallel
// mutation capacity (docs/performance.md, "Sharded NI scheduling"): every
// shard mutation executes on the one host core running the bench. The
// simulated-parallel mode closes that gap with a replay split:
//
//   1. The scheduler executes every decision EAGERLY on the host, exactly as
//      the serial path does — the decision sequence is therefore bit-identical
//      to the serial hierarchical scheduler and the flat dual heap (the FNV
//      `--identity` gate checks this, it is not assumed).
//   2. A ShardCycleMeter (below) prices each mutation in i960 cycles, split
//      into per-shard engine work vs root-arbiter work by bracketing inside
//      HierarchicalScheduler (set_exec_trace).
//   3. A ParallelShardExecutor (parallel.hpp) replays those cycle costs as
//      work items consumed by N equal-priority rtos:: tasks on an N-core
//      WindKernel — per-shard queues drained in parallel, root work funneled
//      through one arbiter task. Simulated elapsed time then reflects what an
//      N-core board would take for the same decision stream.
//
// The split is sound because the decision sequence itself does not depend on
// execution interleaving: the full rank order is total, so the minimum over
// per-shard minima is the global minimum no matter which core finished its
// sift first. Only TIME is modeled in parallel; STATE stays serial.
#pragma once

#include <cstdint>
#include <vector>

#include "dwcs/cost.hpp"
#include "dwcs/types.hpp"
#include "hw/cache.hpp"
#include "hw/calibration.hpp"

namespace nistream::dwcs {

/// Consumer of per-mutation cycle splits from a sharded scheduler.
/// `shard_cycles` is work the owning core's engine did (heap sifts over its
/// shard); `root_cycles` is work the root arbiter did on the mutation's
/// behalf (winner recompute + root heap sifts + interconnect hop).
class ShardExecTrace {
 public:
  virtual ~ShardExecTrace() = default;
  virtual void mutation(std::uint32_t shard, StreamId id,
                        std::int64_t shard_cycles,
                        std::int64_t root_cycles) = 0;
};

/// Accounted CostHook that prices every charge in i960 cycles against
/// PER-CORE d-caches: heap accesses route to the owning core's cache by
/// simulated address (each core's heap pair lives kCoreStride apart; the two
/// root heaps follow and route to the arbiter), and non-heap traffic (frame
/// rings, stream-state blocks) routes to the core last named via
/// set_context() — the core whose stream the scheduler is currently touching.
/// The context routing is an approximation (the serial host executes
/// everything on one thread, so "which core touched this ring" is known only
/// per-mutation, not per-access); at bench scale the structures are
/// miss-dominated anyway, so the approximation moves totals by little and is
/// identical across runs.
class ShardCycleMeter final : public CostHook {
 public:
  ShardCycleMeter(const hw::Calibration& cal, std::uint32_t cores,
                  SimAddr heap_base, SimAddr core_stride)
      : int_costs_{cal.ni_int},
        fp_costs_{cal.ni_softfp},
        mmio_{cal.ni_cpu.mmio_reg_cycles},
        heap_base_{heap_base},
        core_stride_{core_stride},
        cores_{cores == 0 ? 1 : cores} {
    caches_.reserve(cores_ + 1);
    for (std::uint32_t c = 0; c <= cores_; ++c) {
      caches_.emplace_back(cal.ni_cpu.dcache);  // last entry: the arbiter
    }
  }

  void arith_int(Op op, int n) override { total_ += cost(int_costs_, op, n); }
  void arith_float(Op op, int n) override { total_ += cost(fp_costs_, op, n); }
  void mem(SimAddr addr) override { total_ += cache_for(addr).access(addr); }
  void reg() override { total_ += mmio_; }
  void cycles(std::int64_t n) override { total_ += n; }
  [[nodiscard]] bool accounted() const override { return true; }

  /// Core whose stream the scheduler is currently mutating; non-heap
  /// addresses (rings, stream state) bill this core's cache.
  void set_context(std::uint32_t core) { context_ = core; }

  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] std::uint32_t cores() const { return cores_; }
  [[nodiscard]] const hw::CacheModel& core_cache(std::uint32_t c) const {
    return caches_[c];
  }

 private:
  [[nodiscard]] static std::int64_t cost(const hw::ArithCosts& t, Op op,
                                         int n) {
    switch (op) {
      case Op::kAdd: return t.add * n;
      case Op::kMul: return t.mul * n;
      case Op::kDiv: return t.div * n;
      case Op::kCmp: return t.cmp * n;
    }
    return 0;
  }

  [[nodiscard]] hw::CacheModel& cache_for(SimAddr addr) {
    if (addr >= heap_base_) {
      const SimAddr off = addr - heap_base_;
      const SimAddr core = off / core_stride_;
      // Cores 0..N-1 own one stride each; the root heap pair occupies the
      // next stride and bills the arbiter (caches_[cores_]).
      if (core <= cores_) return caches_[static_cast<std::uint32_t>(core)];
    }
    return caches_[context_ < cores_ ? context_ : 0];
  }

  hw::ArithCosts int_costs_;
  hw::ArithCosts fp_costs_;
  std::int64_t mmio_;
  SimAddr heap_base_;
  SimAddr core_stride_;
  std::uint32_t cores_;
  std::vector<hw::CacheModel> caches_;  // cores_ shard caches + 1 arbiter
  std::uint32_t context_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace nistream::dwcs
