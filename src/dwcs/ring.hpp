// Per-stream single-producer/single-consumer circular frame buffer.
//
// Paper, Figure 4(b): "Using a circular queue for each stream eliminates the
// need for synchronization between the scheduler that selects the next packet
// for service, and the server that queues packets to be scheduled." Producers
// write through the tail pointer, the scheduler reads through the head
// pointer; neither pointer is shared for writing.
//
// The ring is a real lock-free SPSC queue (acquire/release atomics) — the
// simulation itself is single-threaded, but the concurrency claim from the
// paper is a property of this data structure and is tested with real threads
// in tests/dwcs/ring_test.cpp.
//
// Cost accounting: each slot has a simulated address; descriptor reads and
// writes report through the CostHook according to the configured residency
// (pinned memory words vs hardware-queue registers).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "dwcs/cost.hpp"
#include "dwcs/types.hpp"

namespace nistream::dwcs {

class FrameRing {
 public:
  /// Descriptor footprint in 32-bit words, for cost accounting.
  static constexpr int kDescriptorWords = 4;

  FrameRing(std::size_t capacity, DescriptorResidency residency,
            SimAddr base_addr, CostHook& hook)
      : slots_(capacity + 1),  // one empty slot distinguishes full from empty
        residency_{residency},
        base_addr_{base_addr},
        hook_{&hook},
        charged_{hook.accounted()} {
    assert(capacity >= 1);
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size() - 1; }

  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t size() const {
    const auto h = head_.load(std::memory_order_acquire);
    const auto t = tail_.load(std::memory_order_acquire);
    return (t + slots_.size() - h) % slots_.size();
  }

  /// Producer side: returns false when full (producer must back off).
  bool push(const FrameDescriptor& d) {
    const auto t = tail_.load(std::memory_order_relaxed);
    const auto next = (t + 1) % slots_.size();
    if (next == head_.load(std::memory_order_acquire)) return false;
    touch_slot(t, kDescriptorWords);  // descriptor store
    slots_[t] = d;
    touch_pointer();                  // tail pointer update
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side: peek the head descriptor without removing it.
  [[nodiscard]] std::optional<FrameDescriptor> front() const {
    const auto h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return std::nullopt;
    touch_slot(h, kDescriptorWords);
    return slots_[h];
  }

  /// Consumer side: drop the head descriptor. Precondition: not empty.
  void pop() {
    const auto h = head_.load(std::memory_order_relaxed);
    assert(h != tail_.load(std::memory_order_acquire));
    touch_pointer();
    head_.store((h + 1) % slots_.size(), std::memory_order_release);
  }

  /// Observability variants that charge nothing through the CostHook: for
  /// drop notifications and crash wipes, where the simulated CPU is not doing
  /// the access (or no longer exists). Never use these on the scheduling hot
  /// path — they would silently under-charge it.
  [[nodiscard]] std::optional<FrameDescriptor> front_unaccounted() const {
    const auto h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return std::nullopt;
    return slots_[h];
  }
  void pop_unaccounted() {
    const auto h = head_.load(std::memory_order_relaxed);
    assert(h != tail_.load(std::memory_order_acquire));
    head_.store((h + 1) % slots_.size(), std::memory_order_release);
  }

 private:
  // The null hook discards charges; the cached `charged_` flag skips the
  // whole touch loop (and its virtual calls) on wall-clock runs.
  void touch_slot(std::size_t slot, int words) const {
    if (!charged_) return;
    if (residency_ == DescriptorResidency::kHardwareQueue) {
      for (int i = 0; i < words; ++i) hook_->reg();
    } else {
      const SimAddr addr = base_addr_ + slot * (kDescriptorWords * 4);
      for (int i = 0; i < words; ++i) {
        hook_->mem(addr + static_cast<SimAddr>(i) * 4);
      }
    }
  }
  void touch_pointer() const {
    if (!charged_) return;
    if (residency_ == DescriptorResidency::kHardwareQueue) {
      hook_->reg();  // index register
    } else {
      hook_->mem(base_addr_ + 4096);  // head/tail word next to the slots
    }
  }

  std::vector<FrameDescriptor> slots_;
  DescriptorResidency residency_;
  SimAddr base_addr_;
  CostHook* hook_;
  bool charged_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
};

/// Arena of per-stream rings. Rings are non-movable (SPSC atomics), so they
/// live in deque chunks: stable addresses, chunked allocation instead of one
/// heap object per stream, and per-stream state that stays a flat pointer
/// rather than a unique_ptr indirection on the scheduling hot path.
class FrameRingPool {
 public:
  FrameRing& emplace(std::size_t capacity, DescriptorResidency residency,
                     SimAddr base_addr, CostHook& hook) {
    return rings_.emplace_back(capacity, residency, base_addr, hook);
  }
  [[nodiscard]] std::size_t size() const { return rings_.size(); }

 private:
  std::deque<FrameRing> rings_;
};

}  // namespace nistream::dwcs
