// RTP/RTCP stages for the session control plane (src/session): the same
// composable Stage shape as stages.hpp, so an RTSP-driven stream is just an
// existing Path A/B/C with an RTP tail spliced in before the scheduler ring.
//
//  * RtpPacketizeStage charges the CPU for building the RTP header (sequence
//    number, 90 kHz media timestamp, SSRC) and grows the frame by the header
//    bytes — the wire then carries RTP-framed media, and the DWCS admission
//    request at SETUP accounts those bytes (frame_bytes + kRtpHeaderBytes).
//  * RtcpReportStage emits periodic RTCP sender reports (RFC 3550 §6.4.1) on
//    a side UDP port: cumulative packet/octet counts snapshotted from the
//    shared RtpState. Reports ride the frame clock — checked as each frame
//    passes, sent when the interval has elapsed — which is how a
//    sender-driven report timer behaves on a paced stream.
//
// Both stages share one RtpState per session, owned by the session (the
// stages only borrow it), so PAUSE/PLAY across pump restarts keeps the
// sequence/timestamp spaces continuous.
#pragma once

#include <cstdint>
#include <memory>

#include "net/udp.hpp"
#include "path/staged_frame.hpp"
#include "path/stages.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"

namespace nistream::path {

/// RTP fixed header (RFC 3550 §5.1): V/P/X/CC/M/PT + seq + timestamp + SSRC.
inline constexpr std::uint32_t kRtpHeaderBytes = 12;
/// RTCP sender report: 8-byte common header + 20-byte sender info block.
inline constexpr std::uint32_t kRtcpSenderReportBytes = 28;
/// 90 kHz media clock at the paper's 30 frames/sec.
inline constexpr std::uint32_t kRtpTicksPerFrame = 3000;

/// Per-session RTP sender state, shared by the packetize and report stages
/// and read by the session plane for teardown bookkeeping.
struct RtpState {
  std::uint32_t ssrc = 0;
  std::uint16_t seq = 0;            // wraps, as the 16-bit wire field does
  std::uint32_t timestamp = 0;      // 90 kHz media clock
  std::uint64_t packets = 0;        // cumulative, for sender reports
  std::uint64_t octets = 0;         // payload octets, headers excluded
  std::uint64_t reports = 0;        // sender reports emitted
  sim::Time last_report = sim::Time::zero();
};

/// Snapshot carried in an RTCP sender-report packet body.
struct RtcpSenderReport {
  std::uint32_t ssrc = 0;
  std::uint32_t rtp_timestamp = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t octet_count = 0;
  sim::Time sent_at = sim::Time::zero();
};

/// Build the RTP header on the NI CPU: charge the per-packet cycles, advance
/// the sequence/timestamp spaces, and grow the frame by the header bytes so
/// every downstream hop (ring, wire, bandwidth meters) sees RTP-framed
/// sizes. CpuCtx is rtos::Task or hostos::Process, as in SegmentStage.
template <typename CpuCtx>
class RtpPacketizeStage final : public Stage {
 public:
  RtpPacketizeStage(CpuCtx& ctx, RtpState& state,
                    std::int64_t cycles_per_packet,
                    std::uint32_t ticks_per_frame = kRtpTicksPerFrame)
      : ctx_{ctx}, state_{state}, cycles_{cycles_per_packet},
        ticks_per_frame_{ticks_per_frame} {}
  [[nodiscard]] const char* name() const override { return "rtp"; }
  sim::Coro apply(StagedFrame& f) override {
    co_await ctx_.consume_cycles(cycles_);
    state_.seq = static_cast<std::uint16_t>(state_.seq + 1);
    state_.timestamp += ticks_per_frame_;
    state_.octets += f.bytes;
    ++state_.packets;
    f.bytes += kRtpHeaderBytes;
  }

 private:
  CpuCtx& ctx_;
  RtpState& state_;
  std::int64_t cycles_;
  std::uint32_t ticks_per_frame_;
};

/// Emit an RTCP sender report when `interval` has elapsed since the last
/// one. Piggybacks on the frame clock (zero cost when not due), sends on its
/// own endpoint/port pair — RTCP always travels beside RTP, not in-band.
class RtcpReportStage final : public Stage {
 public:
  RtcpReportStage(sim::Engine& engine, net::UdpEndpoint& endpoint,
                  int dest_port, RtpState& state, sim::Time interval)
      : engine_{engine}, endpoint_{endpoint}, dest_port_{dest_port},
        state_{state}, interval_{interval} {}
  [[nodiscard]] const char* name() const override { return "rtcp"; }
  sim::Coro apply(StagedFrame& f) override {
    const sim::Time now = engine_.now();
    if (state_.reports != 0 && now - state_.last_report < interval_) {
      co_return;
    }
    auto report = std::make_shared<RtcpSenderReport>();
    report->ssrc = state_.ssrc;
    report->rtp_timestamp = state_.timestamp;
    report->packet_count = state_.packets;
    report->octet_count = state_.octets;
    report->sent_at = now;
    net::Packet pkt;
    pkt.stream_id = f.stream;
    pkt.seq = state_.reports;
    pkt.bytes = kRtcpSenderReportBytes;
    pkt.enqueued_at = now;
    pkt.dispatched_at = now;
    pkt.body = std::move(report);
    endpoint_.send(dest_port_, pkt);
    ++state_.reports;
    state_.last_report = now;
    co_return;
  }

 private:
  sim::Engine& engine_;
  net::UdpEndpoint& endpoint_;
  int dest_port_;
  RtpState& state_;
  sim::Time interval_;
};

}  // namespace nistream::path
