// Declarative compositions of the paper's frame-transfer routes (Figure 3,
// Tables 4-5). Two families:
//
//  * critical-path — the schedulerless Table 4 methodology: one frame in
//    flight, straight from storage onto the wire, latency measured at the
//    client.
//  * producer — the §4.1 segmentation producers that feed a scheduler's
//    StreamService ring, with CPU-charged segmentation and enqueue
//    backpressure.
//
// Each factory returns a FramePath whose stage order IS the paper's path
// definition; drive it with path::pump (producers) or per-frame
// path::FramePath::run_frame (experiments).
#pragma once

#include <string>

#include "dvcm/stream_service.hpp"
#include "hostos/filesystem.hpp"
#include "hostos/host.hpp"
#include "hw/i2o.hpp"
#include "hw/pci.hpp"
#include "hw/scsi_disk.hpp"
#include "hw/striped_volume.hpp"
#include "net/udp.hpp"
#include "path/frame_path.hpp"
#include "rtos/wind.hpp"

namespace nistream::path {

/// Per-frame CPU cost of segmenting (start-code scan + header decode).
inline constexpr std::int64_t kSegmentationCyclesPerFrame = 900;

// ---------------------------------------------------------------------------
// Critical-path family (Table 4): storage -> [bus] -> wire.
// ---------------------------------------------------------------------------

/// Path A critical path: host filesystem read -> host NIC send. Fs is
/// hostos::UfsFilesystem or hostos::DosFilesystem.
template <typename Fs>
FramePath critical_path_a(sim::Engine& engine, Fs& fs,
                          net::UdpEndpoint& endpoint, int dest_port) {
  FramePath p{engine, "critical-a"};
  p.template stage<FsStage<Fs>>(fs).template stage<UdpSendStage>(
      engine, endpoint, dest_port);
  return p;
}

/// Path B critical path: NI disk read -> PCI p2p DMA to the scheduler NI ->
/// NI send (the "4.2disk + 0.015pci + 1.2net" decomposition).
inline FramePath critical_path_b(sim::Engine& engine, hw::ScsiDisk& disk,
                                 hw::PciBus& bus, net::UdpEndpoint& endpoint,
                                 int dest_port) {
  FramePath p{engine, "critical-b"};
  p.stage<DiskStage<hw::ScsiDisk>>(disk)
      .stage<PciDmaStage>(bus)
      .stage<UdpSendStage>(engine, endpoint, dest_port);
  return p;
}

/// Path C critical path: NI disk read -> same-card NI send (no bus at all).
inline FramePath critical_path_c(sim::Engine& engine, hw::ScsiDisk& disk,
                                 net::UdpEndpoint& endpoint, int dest_port) {
  FramePath p{engine, "critical-c"};
  p.stage<DiskStage<hw::ScsiDisk>>(disk).stage<UdpSendStage>(engine, endpoint,
                                                             dest_port);
  return p;
}

// ---------------------------------------------------------------------------
// Producer family (§4.1): storage -> segmentation CPU -> [bus] -> ring.
// ---------------------------------------------------------------------------

/// Path A producer: host filesystem -> host process segmentation -> host
/// scheduler ring. Filesystem overheads and segmentation both charge the
/// producer process's CPU, so they contend with everything else on the host.
template <typename Fs>
FramePath producer_path_a(hostos::HostMachine& host, hostos::Process& proc,
                          Fs& fs, dvcm::StreamService& service,
                          sim::Time backoff = kEnqueueBackoff) {
  FramePath p{host.engine(), "producer-a"};
  p.template stage<FsStage<Fs>>(fs, &host.scheduler(), &proc.thread())
      .template stage<SegmentStage<hostos::Process>>(
          proc, kSegmentationCyclesPerFrame)
      .template stage<EnqueueStage>(host.engine(), service, backoff);
  return p;
}

/// Path B producer: NI disk -> wind-task segmentation -> PCI p2p DMA ->
/// scheduler-NI ring.
inline FramePath producer_path_b(sim::Engine& engine, hw::ScsiDisk& disk,
                                 rtos::Task& task, hw::PciBus& bus,
                                 dvcm::StreamService& service,
                                 sim::Time backoff = kEnqueueBackoff) {
  FramePath p{engine, "producer-b"};
  p.stage<DiskStage<hw::ScsiDisk>>(disk)
      .stage<SegmentStage<rtos::Task>>(task, kSegmentationCyclesPerFrame)
      .stage<PciDmaStage>(bus)
      .stage<EnqueueStage>(engine, service, backoff);
  return p;
}

/// Path B producer with an explicit I2O descriptor post: the frame body
/// DMAs peer-to-peer, then the producer pays the PIO cost of pushing the
/// frame's message descriptor through the I2O channel to the scheduler NI.
inline FramePath producer_path_b_i2o(sim::Engine& engine, hw::ScsiDisk& disk,
                                     rtos::Task& task, hw::PciBus& bus,
                                     hw::I2oChannel& channel,
                                     dvcm::StreamService& service,
                                     sim::Time backoff = kEnqueueBackoff) {
  FramePath p{engine, "producer-b-i2o"};
  p.stage<DiskStage<hw::ScsiDisk>>(disk)
      .stage<SegmentStage<rtos::Task>>(task, kSegmentationCyclesPerFrame)
      .stage<PciDmaStage>(bus)
      .stage<I2oStage>(engine, channel)
      .stage<EnqueueStage>(engine, service, backoff);
  return p;
}

/// Path C producer: NI disk -> wind-task segmentation -> same-card ring.
inline FramePath producer_path_c(sim::Engine& engine, hw::ScsiDisk& disk,
                                 rtos::Task& task,
                                 dvcm::StreamService& service,
                                 sim::Time backoff = kEnqueueBackoff) {
  FramePath p{engine, "producer-c"};
  p.stage<DiskStage<hw::ScsiDisk>>(disk)
      .stage<SegmentStage<rtos::Task>>(task, kSegmentationCyclesPerFrame)
      .stage<EnqueueStage>(engine, service, backoff);
  return p;
}

/// Path C over a Tiger-style striped volume instead of a single spindle.
inline FramePath producer_path_c_striped(sim::Engine& engine,
                                         hw::StripedVolume& volume,
                                         rtos::Task& task,
                                         dvcm::StreamService& service,
                                         sim::Time backoff = kEnqueueBackoff) {
  FramePath p{engine, "producer-c-striped"};
  p.stage<DiskStage<hw::StripedVolume>>(volume)
      .stage<SegmentStage<rtos::Task>>(task, kSegmentationCyclesPerFrame)
      .stage<EnqueueStage>(engine, service, backoff);
  return p;
}

/// Synthetic producer: frames materialize in card memory (no storage stage),
/// get segmented, and enter the ring — the cluster load generators.
template <typename CpuCtx>
FramePath synthetic_producer_path(sim::Engine& engine, CpuCtx& ctx,
                                  dvcm::StreamService& service,
                                  sim::Time backoff = kEnqueueBackoff) {
  FramePath p{engine, "producer-synthetic"};
  p.template stage<SegmentStage<CpuCtx>>(ctx, kSegmentationCyclesPerFrame)
      .template stage<EnqueueStage>(engine, service, backoff);
  return p;
}

}  // namespace nistream::path
