// Composable datapath stages (src/path): each stage charges one calibrated
// cost on its resource — disk mechanics, filesystem overheads, PCI DMA, I2O
// descriptor posting, segmentation CPU, scheduler-ring admission — and the
// FramePath stamps the frame around it. The paper's Paths A/B/C (and any new
// variant) are just different orderings of these stages; see paths.hpp for
// the declarative compositions.
#pragma once

#include <cstdint>
#include <memory>

#include "dvcm/stream_service.hpp"
#include "hw/i2o.hpp"
#include "hw/pci.hpp"
#include "net/udp.hpp"
#include "path/staged_frame.hpp"
#include "sim/coro.hpp"
#include "sim/cpusched.hpp"
#include "sim/engine.hpp"

namespace nistream::path {

/// Backoff before retrying a ring-full enqueue (the producers' backpressure
/// policy: a rejected frame is retried, never lost).
inline constexpr sim::Time kEnqueueBackoff = sim::Time::ms(5);

/// One hop of the pipeline. Stages are stateless per frame (all per-frame
/// state rides in the StagedFrame); a stage object owns only references to
/// the hardware/OS models it charges.
class Stage {
 public:
  virtual ~Stage() = default;
  Stage() = default;
  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

  /// Short stable name used for the per-stage latency breakdown
  /// ("disk", "fs", "pci", "i2o", "segment", "enqueue", "send", ...).
  [[nodiscard]] virtual const char* name() const = 0;

  /// Move the frame through this stage, charging its cost. Runs inline on
  /// the pumping coroutine (joins via symmetric transfer, no extra engine
  /// events), so compositions reproduce hand-rolled loops event-for-event.
  virtual sim::Coro apply(StagedFrame& f) = 0;
};

/// Read the frame's bytes at its disk offset. Works for any device with an
/// awaitable `read(offset, bytes)` — hw::ScsiDisk and hw::StripedVolume.
template <typename Disk>
class DiskStage final : public Stage {
 public:
  explicit DiskStage(Disk& disk) : disk_{disk} {}
  [[nodiscard]] const char* name() const override { return "disk"; }
  sim::Coro apply(StagedFrame& f) override {
    co_await disk_.read(f.disk_offset, f.bytes);
  }

 private:
  Disk& disk_;
};

/// Read the frame through a host filesystem (UFS or dosFs), optionally
/// charging the per-call overheads to a host thread so file service competes
/// for the CPU (the Figure 7/8 contention; pass nullptrs for an otherwise
/// idle machine where only latency matters, as in Table 4).
template <typename Fs>
class FsStage final : public Stage {
 public:
  FsStage(Fs& fs, sim::CpuScheduler* cpu = nullptr,
          sim::CpuScheduler::Thread* thread = nullptr)
      : fs_{fs}, cpu_{cpu}, thread_{thread} {}
  [[nodiscard]] const char* name() const override { return "fs"; }
  sim::Coro apply(StagedFrame& f) override {
    co_await fs_.read(f.disk_offset, f.bytes, cpu_, thread_);
  }

 private:
  Fs& fs_;
  sim::CpuScheduler* cpu_;
  sim::CpuScheduler::Thread* thread_;
};

/// Peer-to-peer DMA of the frame body across the PCI segment — the Path B
/// hop from the disk-attached NI to the scheduler NI.
class PciDmaStage final : public Stage {
 public:
  explicit PciDmaStage(hw::PciBus& bus) : bus_{bus} {}
  [[nodiscard]] const char* name() const override { return "pci"; }
  sim::Coro apply(StagedFrame& f) override { co_await bus_.dma(f.bytes); }

 private:
  hw::PciBus& bus_;
};

/// Post the frame's descriptor through the I2O message path: the producer
/// pays the PIO cost of writing one message frame across the bus (the frame
/// body itself moves by DMA or stays put — only the descriptor rides I2O).
class I2oStage final : public Stage {
 public:
  I2oStage(sim::Engine& engine, hw::I2oChannel& channel)
      : engine_{engine}, channel_{channel} {}
  [[nodiscard]] const char* name() const override { return "i2o"; }
  sim::Coro apply(StagedFrame&) override {
    co_await sim::Delay{engine_, channel_.post_cost()};
  }

 private:
  sim::Engine& engine_;
  hw::I2oChannel& channel_;
};

/// CPU-charged MPEG segmentation (start-code scan + header decode). CpuCtx
/// is rtos::Task or hostos::Process — anything with an awaitable
/// `consume_cycles(n)` on the machine's scheduler, so the cost stretches
/// under contention exactly as the hand-rolled producers' did.
template <typename CpuCtx>
class SegmentStage final : public Stage {
 public:
  SegmentStage(CpuCtx& ctx, std::int64_t cycles_per_frame)
      : ctx_{ctx}, cycles_{cycles_per_frame} {}
  [[nodiscard]] const char* name() const override { return "segment"; }
  sim::Coro apply(StagedFrame&) override {
    co_await ctx_.consume_cycles(cycles_);
  }

 private:
  CpuCtx& ctx_;
  std::int64_t cycles_;
};

/// Admit the frame into a StreamService ring with backpressure: a full ring
/// (or exhausted card memory) is retried after `backoff`, never dropped.
/// Retries are stamped into the frame and aggregated by the pump.
class EnqueueStage final : public Stage {
 public:
  EnqueueStage(sim::Engine& engine, dvcm::StreamService& service,
               sim::Time backoff = kEnqueueBackoff)
      : engine_{engine}, service_{service}, backoff_{backoff} {}
  [[nodiscard]] const char* name() const override { return "enqueue"; }
  sim::Coro apply(StagedFrame& f) override {
    while (!service_.enqueue(f.stream, f.bytes, f.type)) {
      ++f.enqueue_retries;
      co_await sim::Delay{engine_, backoff_};
    }
  }

 private:
  sim::Engine& engine_;
  dvcm::StreamService& service_;
  sim::Time backoff_;
};

/// Put the frame on the wire as a UDP packet — the schedulerless tail of the
/// Table 4 critical-path experiments. `stamp_dispatch` false models a relay
/// hop that is not the dispatch point (the cluster interconnect leg).
class UdpSendStage final : public Stage {
 public:
  UdpSendStage(sim::Engine& engine, net::UdpEndpoint& endpoint, int dest_port,
               bool stamp_dispatch = true)
      : engine_{engine}, endpoint_{endpoint}, dest_port_{dest_port},
        stamp_dispatch_{stamp_dispatch} {}
  [[nodiscard]] const char* name() const override { return "send"; }
  sim::Coro apply(StagedFrame& f) override {
    net::Packet pkt;
    pkt.stream_id = f.stream;
    pkt.seq = f.seq;
    pkt.bytes = f.bytes;
    pkt.frame_type = f.type;
    pkt.enqueued_at = f.created_at;
    if (stamp_dispatch_) pkt.dispatched_at = engine_.now();
    endpoint_.send(dest_port_, pkt);
    co_return;
  }

 private:
  sim::Engine& engine_;
  net::UdpEndpoint& endpoint_;
  int dest_port_;
  bool stamp_dispatch_;
};

/// A fixed-latency hop with no modeled resource — e.g. the cluster
/// interconnect's store-and-forward pipeline in the §1 network path.
class DelayStage final : public Stage {
 public:
  DelayStage(sim::Engine& engine, sim::Time latency, const char* label = "hop")
      : engine_{engine}, latency_{latency}, label_{label} {}
  [[nodiscard]] const char* name() const override { return label_; }
  sim::Coro apply(StagedFrame&) override {
    co_await sim::Delay{engine_, latency_};
  }

 private:
  sim::Engine& engine_;
  sim::Time latency_;
  const char* label_;
};

}  // namespace nistream::path
