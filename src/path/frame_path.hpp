// FramePath: an ordered list of stages plus the pump that drives frames
// through it. Building a datapath is now declarative —
//
//   auto p = FramePath{eng, "path-b"}
//                .stage<DiskStage<hw::ScsiDisk>>(disk)
//                .stage<SegmentStage<rtos::Task>>(task, 900)
//                .stage<PciDmaStage>(bus)
//                .stage<EnqueueStage>(eng, service);
//
// — and every path gets per-stage latency accounting for free: the pump
// stamps each stage's start/end into the StagedFrame and folds them into a
// PathStats breakdown, replacing the ad-hoc RunningStat locals the
// experiments used to keep by hand.
//
// Determinism note: stages are awaited back to back on the pumping
// coroutine. sim::Coro joins a child via symmetric transfer without a trip
// through the event queue, so a composed path replays the exact event
// sequence of the hand-rolled loop it replaced — the differential tests in
// tests/path/ hold the old and new implementations bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "path/staged_frame.hpp"
#include "path/stages.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"

namespace nistream::path {

/// Inter-frame pacing for a pumped path. The paper's producers prime the
/// queues with a burst then settle to the stream rate (gap BEFORE each
/// post-burst frame); the Table 4 methodology instead keeps one frame in
/// flight with a fixed gap AFTER every frame. Both are just pacing policies.
struct Pacing {
  enum class Where { kBeforeFrame, kAfterFrame };

  int burst_frames = 0;                // frames exempt from the gap at start
  sim::Time gap = sim::Time::zero();   // zero = unpaced
  Where where = Where::kBeforeFrame;
  /// Grid pacing: frame k targets `anchor + k * gap` (absolute grid) instead
  /// of `gap` after the previous frame. Gap-relative pacing drifts later by
  /// the per-frame stage time every period; against a deadline scheduler
  /// that advances exactly one period per departure, that drift eats the
  /// whole deadline margin on long streams. After a stall (PumpGate pause,
  /// enqueue backoff) the anchor slides forward rather than bursting to
  /// catch up.
  bool grid = false;
};

/// Fills in the next frame to push; returns false when the source is dry.
/// `seq` counts frames this pump has produced so far. The source owns frame
/// identity (stream, bytes, type, disk offset, provenance); the pump owns
/// timing.
using FrameSource =
    std::function<bool(std::uint64_t seq, StagedFrame& frame)>;

class FramePath {
 public:
  explicit FramePath(sim::Engine& engine, std::string name = "path")
      : engine_{&engine}, name_{std::move(name)} {}

  FramePath(FramePath&&) = default;
  FramePath& operator=(FramePath&&) = default;

  /// Append a stage, constructed in place. Returns *this for chaining.
  template <typename S, typename... Args>
  FramePath& stage(Args&&... args) {
    stages_.push_back(std::make_unique<S>(std::forward<Args>(args)...));
    return *this;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }
  [[nodiscard]] sim::Engine& engine() const { return *engine_; }
  [[nodiscard]] const Stage& stage_at(std::size_t i) const {
    return *stages_[i];
  }

  /// Pre-size `stats.stages` to mirror this path's stage list so stats can
  /// be read mid-run (partial producers in the fault tests never finish).
  void bind(PathStats& stats) const {
    stats.stages.clear();
    stats.stages.reserve(stages_.size());
    for (const auto& s : stages_) stats.stages.push_back({s->name(), {}});
  }

  /// Drive one frame through every stage in order, stamping stage
  /// boundaries and (when `stats` is non-null) folding the latencies into
  /// the per-stage breakdown.
  sim::Coro run_frame(StagedFrame& frame, PathStats* stats) {
    frame.created_at = engine_->now();
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      const sim::Time start = engine_->now();
      co_await stages_[i]->apply(frame);
      const sim::Time end = engine_->now();
      frame.stamp(i, start, end);
      if (stats) stats->stages[i].ms.add((end - start).to_ms());
    }
    frame.completed_at = engine_->now();
    if (stats) {
      stats->total_ms.add((frame.completed_at - frame.created_at).to_ms());
    }
  }

 private:
  sim::Engine* engine_;
  std::string name_;
  std::vector<std::unique_ptr<Stage>> stages_;
};

/// External lifecycle control for a running pump: PAUSE parks the pumping
/// coroutine at the next frame boundary, RESUME wakes it, STOP makes it
/// return early (stats.finished still set, so a stopped pump reports
/// truthfully). Built for the RTSP session plane — PAUSE/PLAY/TEARDOWN map
/// onto pause()/resume()/stop() — but any long-lived producer can use one.
/// Whole frames are never cut: a pause lands between frames, never inside a
/// stage.
class PumpGate {
 public:
  explicit PumpGate(sim::Engine& engine) : cond_{engine} {}

  void pause() { paused_ = true; }

  void resume() {
    if (!paused_) return;
    paused_ = false;
    cond_.signal();
  }

  void stop() {
    stopped_ = true;
    cond_.signal();
  }

  [[nodiscard]] bool paused() const { return paused_; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Awaited by the pump while paused; signalled by resume()/stop().
  [[nodiscard]] auto wait() { return cond_.wait(); }

 private:
  sim::Condition cond_;
  bool paused_ = false;
  bool stopped_ = false;
};

/// Pump `source` through `path` until dry, applying `pacing` and keeping
/// `stats` current after every frame (counters update incrementally, so a
/// pump interrupted by a fault still reports truthfully). Optional
/// `on_frame` observes each completed frame — e.g. to feed a TimeSeries.
/// Optional `gate` gives the owner pause/resume/stop control at frame
/// boundaries; it must outlive the pump.
inline sim::Coro pump(FramePath& path, FrameSource source, Pacing pacing,
                      PathStats& stats,
                      std::function<void(const StagedFrame&)> on_frame = {},
                      PumpGate* gate = nullptr) {
  sim::Engine& engine = path.engine();
  if (stats.stages.size() != path.stage_count()) path.bind(stats);
  sim::Time grid_anchor;
  bool grid_anchored = false;
  // Wait until the grid slot for frame `k`; if the slot already passed (a
  // pause or a backoff stalled the pump), slide the anchor so the stream
  // resumes at rate from now instead of bursting its backlog.
  const auto grid_wait = [&](std::uint64_t k) -> sim::Coro {
    const auto target = grid_anchor + pacing.gap * static_cast<std::int64_t>(k);
    if (target > engine.now()) {
      co_await sim::Delay{engine, target - engine.now()};
    } else {
      grid_anchor = engine.now() - pacing.gap * static_cast<std::int64_t>(k);
    }
  };
  for (std::uint64_t seq = 0;; ++seq) {
    if (gate) {
      while (gate->paused() && !gate->stopped()) co_await gate->wait();
      if (gate->stopped()) break;
    }
    StagedFrame frame;
    frame.seq = seq;
    if (!source(seq, frame)) break;
    if (pacing.grid && !grid_anchored) {
      grid_anchor = engine.now();
      grid_anchored = true;
    }
    const bool paced = pacing.gap > sim::Time::zero() &&
                       seq >= static_cast<std::uint64_t>(pacing.burst_frames);
    if (paced && pacing.where == Pacing::Where::kBeforeFrame) {
      if (pacing.grid) {
        co_await grid_wait(seq);
      } else {
        co_await sim::Delay{engine, pacing.gap};
      }
    }
    co_await path.run_frame(frame, &stats);
    ++stats.frames_produced;
    stats.retries += frame.enqueue_retries;
    if (on_frame) on_frame(frame);
    if (paced && pacing.where == Pacing::Where::kAfterFrame) {
      if (pacing.grid) {
        co_await grid_wait(seq + 1);
      } else {
        co_await sim::Delay{engine, pacing.gap};
      }
    }
  }
  stats.finished = true;
  stats.finished_at = engine.now();
}

/// Source over an mpeg::MpegFile laid out contiguously from `base_offset`
/// (frames are read back to back, as both producers always have).
inline FrameSource mpeg_file_source(const mpeg::MpegFile& file,
                                    dwcs::StreamId stream,
                                    std::uint64_t base_offset,
                                    Provenance provenance) {
  // The running offset lives in the closure; captured file by reference —
  // callers keep the MpegFile alive for the life of the pump, as before.
  auto offset = std::make_shared<std::uint64_t>(base_offset);
  return [&file, stream, offset, provenance](std::uint64_t seq,
                                             StagedFrame& f) {
    if (seq >= file.frames.size()) return false;
    const auto& fr = file.frames[static_cast<std::size_t>(seq)];
    f.stream = stream;
    f.bytes = fr.bytes;
    f.type = fr.type;
    f.disk_offset = *offset;
    f.provenance = provenance;
    *offset += fr.bytes;
    return true;
  };
}

/// Source of `count` fixed-size frames whose disk offset is computed from
/// the sequence number — the Table 4 methodology's scattered layout
/// (`seq * 10'000'000`) or any other placement policy.
inline FrameSource fixed_frame_source(
    std::uint64_t count, std::uint32_t bytes,
    std::function<std::uint64_t(std::uint64_t)> offset_of,
    dwcs::StreamId stream = 0, Provenance provenance = Provenance::kNiDisk,
    mpeg::FrameType type = mpeg::FrameType::kP) {
  return [=](std::uint64_t seq, StagedFrame& f) {
    if (seq >= count) return false;
    f.stream = stream;
    f.bytes = bytes;
    f.type = type;
    f.disk_offset = offset_of ? offset_of(seq) : 0;
    f.provenance = provenance;
    return true;
  };
}

}  // namespace nistream::path
