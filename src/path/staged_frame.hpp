// The unified frame datapath's unit of work: one frame descriptor flowing
// through a composed pipeline of stages (src/path/frame_path.hpp).
//
// The paper's three frame-transfer routes (Figure 3) — host disk→FS→host
// scheduler (Path A), NI disk→PCI p2p DMA→scheduler NI (Path B), NI-local
// disk→NI CPU→network (Path C) — all move the same thing: a frame with a
// stream, a size, a type and a disk location. StagedFrame models exactly
// that, plus per-stage timestamps so every pipeline gets a uniform latency
// breakdown for free (the Table 4 decomposition "4.2disk+1.2net+0.015pci"
// generalized to any composition).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "dwcs/types.hpp"
#include "mpeg/frame.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace nistream::path {

/// Where a frame's bytes came from (stamped by the source / path factory).
enum class Provenance : std::uint8_t {
  kUnknown = 0,
  kHostFile,       // host filesystem (Path A)
  kNiDisk,         // NI-attached SCSI disk (Paths B and C)
  kStripedVolume,  // Tiger-style striped member disks
  kSynthetic,      // generated in memory (cluster load producers)
  kRemote,         // arrived over the interconnect (the §1 network path)
};

[[nodiscard]] inline const char* to_string(Provenance p) {
  switch (p) {
    case Provenance::kUnknown: return "unknown";
    case Provenance::kHostFile: return "host-file";
    case Provenance::kNiDisk: return "ni-disk";
    case Provenance::kStripedVolume: return "striped-volume";
    case Provenance::kSynthetic: return "synthetic";
    case Provenance::kRemote: return "remote";
  }
  return "?";
}

/// Start/end instants of one stage's work on one frame. Stamps are taken
/// synchronously around the stage await, so per-frame stage durations sum
/// exactly to the frame's end-to-end pipeline latency.
struct StageSample {
  sim::Time start;
  sim::Time end;

  [[nodiscard]] sim::Time duration() const { return end - start; }
};

/// One frame in flight through a FramePath. Fixed-size sample storage keeps
/// the descriptor allocation-free (paths are short; 8 stages is far beyond
/// any composition in the repo).
struct StagedFrame {
  static constexpr std::size_t kMaxStages = 8;

  dwcs::StreamId stream = 0;
  std::uint64_t seq = 0;           // sequence number within this path
  std::uint32_t bytes = 0;
  mpeg::FrameType type = mpeg::FrameType::kP;
  std::uint64_t disk_offset = 0;   // where the source stage reads from
  Provenance provenance = Provenance::kUnknown;
  std::uint32_t tenant = 0;        // ingress scope (stamped by ClassifyStage)

  sim::Time created_at;            // pipeline entry (the Table 4 "t0")
  sim::Time completed_at;          // last stage finished
  std::uint32_t enqueue_retries = 0;  // backpressure retries (EnqueueStage)

  std::array<StageSample, kMaxStages> samples{};
  std::size_t stage_count = 0;

  void stamp(std::size_t stage, sim::Time start, sim::Time end) {
    assert(stage < kMaxStages);
    samples[stage] = StageSample{start, end};
    if (stage + 1 > stage_count) stage_count = stage + 1;
  }

  /// Sum of stamped stage durations; equals completed_at - created_at for a
  /// frame that ran a full pipeline (stages are awaited back to back).
  [[nodiscard]] sim::Time staged_total() const {
    sim::Time t = sim::Time::zero();
    for (std::size_t i = 0; i < stage_count; ++i) t += samples[i].duration();
    return t;
  }
};

/// Aggregate outcome of pumping frames through one path: the per-stage
/// latency breakdown that replaces the ad-hoc RunningStat locals the
/// experiments used to keep, plus the producer-facing counters the apps
/// layer has always reported (apps::ProducerStats is an alias of this).
struct PathStats {
  std::uint64_t frames_produced = 0;
  std::uint64_t retries = 0;       // total enqueue-backpressure retries
  bool finished = false;           // the source ran dry
  sim::Time finished_at;

  struct StageStat {
    std::string name;
    sim::RunningStat ms;
  };
  std::vector<StageStat> stages;   // parallel to the path's stage list
  sim::RunningStat total_ms;       // pipeline entry -> last stage end

  /// Mean latency of the named stage in ms (0 when the stage is absent —
  /// convenient for uniform result tables).
  [[nodiscard]] double stage_mean_ms(const std::string& name) const {
    for (const auto& s : stages) {
      if (s.name == name) return s.ms.mean();
    }
    return 0.0;
  }

  [[nodiscard]] const sim::RunningStat* stage(const std::string& name) const {
    for (const auto& s : stages) {
      if (s.name == name) return &s.ms;
    }
    return nullptr;
  }
};

}  // namespace nistream::path
