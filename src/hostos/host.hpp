// Host operating-system model (Solaris 2.x x86 on the quad Pentium Pro).
//
// The host runs a multi-CPU time-slicing scheduler; user processes consume
// CPU through it and compete with each other. This is where the paper's
// host-based DWCS lives — and where web-server load starves it (Figures 6-8).
// CPUs can be "brought off-line" (the paper runs the host experiments with 2
// CPUs and the NI experiments with 1) simply by constructing the machine with
// fewer CPUs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/calibration.hpp"
#include "hw/cpu.hpp"
#include "sim/coro.hpp"
#include "sim/cpusched.hpp"
#include "sim/engine.hpp"

namespace nistream::hostos {

/// Default time-sharing priority for user processes. Lower = more urgent;
/// the model uses fixed priorities (no TS priority aging — the experiments
/// only need relative CPU competition, which fixed priorities plus
/// round-robin quanta provide).
inline constexpr int kDefaultPriority = 100;

class HostMachine;

/// A user process (or bound LWP). The paper binds the DWCS scheduler process
/// to a CPU with Solaris `pbind`; pass `affinity` >= 0 for that.
class Process {
 public:
  [[nodiscard]] const std::string& name() const { return thread_->name(); }
  [[nodiscard]] sim::Time cpu_time() const { return thread_->cpu_time(); }

  /// co_await proc.consume(t): compute for `t` of CPU time (may stretch
  /// arbitrarily under contention — that stretching IS Figure 7/8).
  [[nodiscard]] sim::CpuScheduler::RunAwaiter consume(sim::Time t);
  /// co_await proc.consume_cycles(n): host-CPU cycles.
  [[nodiscard]] sim::CpuScheduler::RunAwaiter consume_cycles(std::int64_t n);

  /// Underlying scheduler context (for services like the filesystem that
  /// charge their per-call CPU overhead to the calling process).
  [[nodiscard]] sim::CpuScheduler::Thread& thread() { return *thread_; }

 private:
  friend class HostMachine;
  Process(HostMachine& host, sim::CpuScheduler::Thread& thread)
      : host_{&host}, thread_{&thread} {}
  HostMachine* host_;
  sim::CpuScheduler::Thread* thread_;
};

class HostMachine {
 public:
  HostMachine(sim::Engine& engine, int online_cpus,
              const hw::Calibration& cal = {},
              sim::Time meter_sample = sim::Time::sec(1))
      : engine_{engine},
        cpu_model_{cal.host_cpu},
        sched_{engine,
               sim::CpuScheduler::Params{.num_cpus = online_cpus,
                                         .quantum = cal.host_os.quantum,
                                         .context_switch = cal.host_os.context_switch,
                                         .meter_sample = meter_sample}} {}

  HostMachine(const HostMachine&) = delete;
  HostMachine& operator=(const HostMachine&) = delete;

  Process& spawn(std::string name, int priority = kDefaultPriority,
                 int affinity = -1) {
    procs_.push_back(std::unique_ptr<Process>(new Process{
        *this, sched_.create_thread(std::move(name), priority, affinity)}));
    return *procs_.back();
  }

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] hw::CpuModel& cpu_model() { return cpu_model_; }
  [[nodiscard]] sim::CpuScheduler& scheduler() { return sched_; }
  [[nodiscard]] int online_cpus() const { return sched_.num_cpus(); }

  /// The Figure 6 "perfmeter": whole-machine utilization in percent.
  [[nodiscard]] sim::TimeSeries perfmeter(sim::Time end) const {
    return sched_.utilization_series(end);
  }

 private:
  friend class Process;
  sim::Engine& engine_;
  hw::CpuModel cpu_model_;  // clock-rate reference for cycle conversion
  sim::CpuScheduler sched_;
  std::vector<std::unique_ptr<Process>> procs_;
};

inline sim::CpuScheduler::RunAwaiter Process::consume(sim::Time t) {
  return host_->sched_.run(*thread_, t);
}

inline sim::CpuScheduler::RunAwaiter Process::consume_cycles(std::int64_t n) {
  return consume(host_->cpu_model_.time_of(n));
}

}  // namespace nistream::hostos
