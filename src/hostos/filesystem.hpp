// Host filesystem models: Solaris UFS vs mounted VxWorks dosFs.
//
// Table 4 Experiment I measures the same MPEG file served through two
// filesystems on the same disk: ~1 ms/frame via UFS (8 KB logical blocks,
// buffer cache, read-ahead) vs ~8 ms/frame via the DOS filesystem VxWorks
// uses (no cache, FAT chain walked on disk for every read). Both models sit
// on a ScsiDisk and add exactly those mechanisms.
//
// CPU accounting: per-call overheads (syscall + block copy) can be charged to
// a scheduler thread so that file service competes for the host CPU (this
// matters under the Figure 7/8 load); pass nullptr to model an otherwise
// idle machine where only latency matters (Table 4).
#pragma once

#include <cstdint>
#include <unordered_set>

#include "hw/calibration.hpp"
#include "hw/scsi_disk.hpp"
#include "sim/coro.hpp"
#include "sim/cpusched.hpp"
#include "sim/engine.hpp"

namespace nistream::hostos {

/// UFS: logical-block buffer cache with one-block read-ahead.
class UfsFilesystem {
 public:
  UfsFilesystem(sim::Engine& engine, hw::ScsiDisk& disk,
                const hw::FilesystemParams& p = hw::kFilesystems)
      : engine_{engine}, disk_{disk}, params_{p} {}

  UfsFilesystem(const UfsFilesystem&) = delete;
  UfsFilesystem& operator=(const UfsFilesystem&) = delete;

  /// Read `bytes` at byte `offset`. Cached blocks cost only the per-call
  /// overhead; missing blocks go to disk. After each call the next block is
  /// prefetched in the background.
  sim::Coro read(std::uint64_t offset, std::uint32_t bytes,
                 sim::CpuScheduler* cpu = nullptr,
                 sim::CpuScheduler::Thread* thread = nullptr) {
    const std::uint64_t bs = params_.ufs_block_bytes;
    const std::uint64_t first = offset / bs;
    const std::uint64_t last = (offset + bytes - 1) / bs;
    for (std::uint64_t b = first; b <= last; ++b) {
      if (!cached_.contains(b)) {
        ++misses_;
        co_await disk_.read(b * bs, bs);
        cached_.insert(b);
        inflight_.erase(b);
      } else {
        ++hits_;
      }
    }
    if (params_.ufs_readahead) prefetch(last + 1);
    if (cpu && thread) {
      co_await cpu->run(*thread, params_.ufs_per_call_overhead);
    } else {
      co_await sim::Delay{engine_, params_.ufs_per_call_overhead};
    }
  }

  [[nodiscard]] std::uint64_t cache_hits() const { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return misses_; }

  /// Drop the buffer cache (e.g. after remount).
  void drop_caches() { cached_.clear(); }

 private:
  void prefetch(std::uint64_t block) {
    if (cached_.contains(block) || inflight_.contains(block)) return;
    inflight_.insert(block);
    const std::uint64_t bs = params_.ufs_block_bytes;
    [](UfsFilesystem& self, std::uint64_t b, std::uint64_t blk_sz) -> sim::Coro {
      co_await self.disk_.read(b * blk_sz, blk_sz);
      self.cached_.insert(b);
      self.inflight_.erase(b);
    }(*this, block, bs).detach();
  }

  sim::Engine& engine_;
  hw::ScsiDisk& disk_;
  hw::FilesystemParams params_;
  std::unordered_set<std::uint64_t> cached_;
  std::unordered_set<std::uint64_t> inflight_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// dosFs (the VxWorks FAT filesystem, here mounted on the host): no buffer
/// cache; every read walks the FAT on disk (a separate mechanical access in
/// the FAT region) and then reads the data clusters.
class DosFilesystem {
 public:
  /// `fat_region_offset` places the FAT far from the data area so the chain
  /// walk costs a real seek, as it does on a FAT volume.
  DosFilesystem(sim::Engine& engine, hw::ScsiDisk& disk,
                const hw::FilesystemParams& p = hw::kFilesystems,
                std::uint64_t fat_region_offset = 0)
      : engine_{engine}, disk_{disk}, params_{p},
        fat_offset_{fat_region_offset} {}

  DosFilesystem(const DosFilesystem&) = delete;
  DosFilesystem& operator=(const DosFilesystem&) = delete;

  sim::Coro read(std::uint64_t offset, std::uint32_t bytes,
                 sim::CpuScheduler* cpu = nullptr,
                 sim::CpuScheduler::Thread* thread = nullptr) {
    // FAT chain lookup. The driver holds the *current* FAT sector in RAM
    // (that much caching even dosFs does), so the mechanical FAT access
    // only recurs when the chain crosses into a new FAT sector; the chain
    // walk itself costs CPU on every call.
    const std::uint64_t fat_sector = fat_offset_ + (offset / (128 * 512)) * 512;
    if (fat_sector != cached_fat_sector_) {
      co_await disk_.read(fat_sector, 512);
      cached_fat_sector_ = fat_sector;
    }
    if (cpu && thread) {
      co_await cpu->run(*thread, params_.dosfs_fat_lookup);
    } else {
      co_await sim::Delay{engine_, params_.dosfs_fat_lookup};
    }
    // Data clusters: one contiguous mechanical access (clusters of a fresh
    // file are laid out sequentially), rounded up to whole 512-byte sectors.
    const std::uint64_t bs = params_.dosfs_block_bytes;
    const std::uint64_t len = ((bytes + bs - 1) / bs) * bs;
    co_await disk_.read(data_region_ + offset, len);
    if (cpu && thread) {
      co_await cpu->run(*thread, params_.dosfs_per_call_overhead);
    } else {
      co_await sim::Delay{engine_, params_.dosfs_per_call_overhead};
    }
    ++reads_;
  }

  [[nodiscard]] std::uint64_t reads() const { return reads_; }

 private:
  sim::Engine& engine_;
  hw::ScsiDisk& disk_;
  hw::FilesystemParams params_;
  std::uint64_t fat_offset_;
  std::uint64_t cached_fat_sector_ = ~std::uint64_t{0};
  std::uint64_t data_region_ = 512ull * 1024 * 1024;  // far from the FAT
  std::uint64_t reads_ = 0;
};

}  // namespace nistream::hostos
