// MPEG stream analysis: GOP validation, bitrate profiling, and a VBV-style
// smoothing-buffer simulation.
//
// The serving side of a media server needs to know what it is serving: the
// per-type size mix decides descriptor memory budgets, the windowed bitrate
// decides the stream's admission parameters, and the smoothing-buffer
// simulation answers "what client buffer does this clip need at a given
// drain rate" — the client-side buffering knob the paper's introduction
// lists among end-to-end techniques.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "mpeg/frame.hpp"

namespace nistream::mpeg {

struct TypeStats {
  std::uint64_t count = 0;
  std::uint64_t total_bytes = 0;
  std::uint32_t min_bytes = 0;
  std::uint32_t max_bytes = 0;

  [[nodiscard]] double mean_bytes() const {
    return count ? static_cast<double>(total_bytes) / static_cast<double>(count)
                 : 0.0;
  }
};

struct StreamAnalysis {
  std::array<TypeStats, 3> by_type{};  // indexed by FrameType-1 (I, P, B)
  std::uint64_t frames = 0;
  std::uint64_t total_bytes = 0;
  double mean_bitrate_bps = 0;
  double peak_window_bitrate_bps = 0;  // worst 1-second window
  bool gop_structure_valid = false;    // every GOP starts with an I frame
  int detected_gop_length = 0;         // distance between I frames (0 = n/a)

  [[nodiscard]] const TypeStats& of(FrameType t) const {
    return by_type[static_cast<std::size_t>(t) - 1];
  }
};

/// Analyze a frame table at its nominal frame rate.
[[nodiscard]] inline StreamAnalysis analyze(const std::vector<FrameInfo>& frames,
                                            double fps) {
  StreamAnalysis a;
  a.frames = frames.size();
  int last_i = -1, gop_len = 0;
  bool first_is_i = !frames.empty() && frames[0].type == FrameType::kI;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto& f = frames[i];
    TypeStats& ts = a.by_type[static_cast<std::size_t>(f.type) - 1];
    if (ts.count == 0) {
      ts.min_bytes = f.bytes;
      ts.max_bytes = f.bytes;
    }
    ts.min_bytes = std::min(ts.min_bytes, f.bytes);
    ts.max_bytes = std::max(ts.max_bytes, f.bytes);
    ++ts.count;
    ts.total_bytes += f.bytes;
    a.total_bytes += f.bytes;
    if (f.type == FrameType::kI) {
      if (last_i >= 0) {
        const int len = static_cast<int>(i) - last_i;
        if (gop_len == 0) gop_len = len;
        if (len != gop_len) gop_len = -1;  // irregular
      }
      last_i = static_cast<int>(i);
    }
  }
  a.detected_gop_length = gop_len > 0 ? gop_len : 0;
  a.gop_structure_valid = first_is_i && gop_len > 0;
  if (!frames.empty()) {
    a.mean_bitrate_bps =
        static_cast<double>(a.total_bytes) * 8.0 * fps /
        static_cast<double>(frames.size());
    // Peak 1-second window at the nominal rate.
    const auto win = static_cast<std::size_t>(fps);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      sum += frames[i].bytes;
      if (i >= win) sum -= frames[i - win].bytes;
      if (i + 1 >= win) {
        a.peak_window_bitrate_bps =
            std::max(a.peak_window_bitrate_bps, static_cast<double>(sum) * 8.0);
      }
    }
    if (frames.size() < win) {
      a.peak_window_bitrate_bps = static_cast<double>(sum) * 8.0;
    }
  }
  return a;
}

/// Smoothing-buffer (VBV-style) simulation: frames arrive at the nominal
/// frame rate; the buffer drains at `drain_bps`. Returns the peak buffer
/// occupancy in bytes (the client buffer the clip needs at that rate) and
/// whether the buffer ever ran dry after the priming frame.
struct BufferSimResult {
  std::uint64_t peak_occupancy_bytes = 0;
  bool underrun = false;
};

[[nodiscard]] inline BufferSimResult simulate_smoothing_buffer(
    const std::vector<FrameInfo>& frames, double fps, double drain_bps) {
  BufferSimResult r;
  double occupancy = 0;
  const double drained_per_frame = drain_bps / 8.0 / fps;
  for (const auto& f : frames) {
    occupancy += f.bytes;
    r.peak_occupancy_bytes = std::max(
        r.peak_occupancy_bytes, static_cast<std::uint64_t>(occupancy));
    occupancy -= drained_per_frame;
    if (occupancy < 0) {
      // Drained everything available before the next frame arrived.
      if (&f != &frames.back()) r.underrun = true;
      occupancy = 0;
    }
  }
  return r;
}

}  // namespace nistream::mpeg
