#include "mpeg/encoder.hpp"

#include <cassert>
#include <cmath>

namespace nistream::mpeg {
namespace {

void put_start_code(std::vector<std::uint8_t>& out, std::uint8_t code) {
  out.push_back(0x00);
  out.push_back(0x00);
  out.push_back(0x01);
  out.push_back(code);
}

/// Sequence header: width/height (12 bits each), aspect, frame-rate code,
/// bit-rate, VBV. We emit syntactically plausible fixed values.
void put_sequence_header(std::vector<std::uint8_t>& out, int w, int h) {
  put_start_code(out, kSequenceHeaderCode);
  out.push_back(static_cast<std::uint8_t>(w >> 4));
  out.push_back(static_cast<std::uint8_t>(((w & 0xF) << 4) | (h >> 8)));
  out.push_back(static_cast<std::uint8_t>(h & 0xFF));
  out.push_back(0x15);  // aspect 1:1, frame rate code 5 (30 fps)
  out.push_back(0xFF);  // bit-rate fields (don't-care for segmentation)
  out.push_back(0xFF);
  out.push_back(0xE0);
  out.push_back(0xA0);
}

void put_gop_header(std::vector<std::uint8_t>& out) {
  put_start_code(out, kGopHeaderCode);
  out.push_back(0x00);  // time code (unused by the segmenter)
  out.push_back(0x08);
  out.push_back(0x00);
  out.push_back(0x40);
}

/// Picture header: temporal_reference (10 bits) then picture_coding_type
/// (3 bits), then vbv_delay — the layout the segmenter decodes.
void put_picture_header(std::vector<std::uint8_t>& out, std::uint32_t temporal_ref,
                        FrameType type) {
  put_start_code(out, kPictureStartCode);
  const auto code = static_cast<std::uint32_t>(type);  // 1=I, 2=P, 3=B
  // Bits: tttttttt tt ccc vvvvvvvvvvvvvvvv 0...  (t=temporal ref, c=type)
  out.push_back(static_cast<std::uint8_t>(temporal_ref >> 2));
  out.push_back(static_cast<std::uint8_t>(((temporal_ref & 0x3) << 6) |
                                          (code << 3) | 0x07));
  out.push_back(0xFF);  // vbv_delay
  out.push_back(0xF8);
}

/// Payload filler that can never emulate a start code: no 0x00 bytes.
void put_payload(std::vector<std::uint8_t>& out, std::uint32_t n,
                 sim::Rng& rng) {
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::uint8_t>(1 + rng.below(255)));
  }
}

}  // namespace

MpegFile SyntheticEncoder::generate(int n_frames) const {
  assert(n_frames >= 0);
  MpegFile file;
  file.fps = params_.fps;
  file.frames.reserve(static_cast<std::size_t>(n_frames));
  sim::Rng rng{params_.seed};

  // Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
  const double s = params_.size_sigma;
  const auto draw_size = [&](double mean) {
    const double mu = std::log(mean) - s * s / 2.0;
    const double v = rng.lognormal(mu, s);
    return std::max(params_.min_frame_bytes, static_cast<std::uint32_t>(v));
  };

  file.bitstream.reserve(static_cast<std::size_t>(
      static_cast<double>(n_frames) * params_.mean_p_bytes));
  put_sequence_header(file.bitstream, params_.width, params_.height);

  for (int i = 0; i < n_frames; ++i) {
    const int in_gop = i % params_.gop.n;
    if (in_gop == 0) put_gop_header(file.bitstream);
    const FrameType type = params_.gop.type_of(in_gop);
    const double mean = type == FrameType::kI   ? params_.mean_i_bytes
                        : type == FrameType::kP ? params_.mean_p_bytes
                                                : params_.mean_b_bytes;
    const std::uint32_t coded = draw_size(mean);

    const std::size_t frame_start = file.bitstream.size();
    put_picture_header(file.bitstream,
                       static_cast<std::uint32_t>(in_gop) & 0x3FF, type);
    const std::uint32_t header_bytes =
        static_cast<std::uint32_t>(file.bitstream.size() - frame_start);
    put_payload(file.bitstream, coded > header_bytes ? coded - header_bytes : 0,
                rng);

    file.frames.push_back(FrameInfo{
        .type = type,
        .bytes = static_cast<std::uint32_t>(file.bitstream.size() - frame_start),
        .display_index = static_cast<std::uint32_t>(i),
        .pts_seconds = static_cast<double>(i) / params_.fps,
    });
  }
  put_start_code(file.bitstream, kSequenceEndCode);
  return file;
}

}  // namespace nistream::mpeg
