// Synthetic MPEG-1 video elementary-stream generator.
//
// Produces structurally valid MPEG-1 video streams: sequence header, GOP
// headers, picture headers with correct temporal references and
// picture_coding_type fields, and emulation-free pseudo payload. Frame sizes
// follow a lognormal model with I/P/B means in realistic ratios, so the
// scheduler sees the bursty size mix the paper's real MPEG files had.
//
// What is deliberately NOT here: DCT coefficients, motion vectors, or
// anything a video decoder would render — the experiments exercise frame
// *scheduling*, and the substitution (DESIGN.md) only needs sizes, types and
// a parseable syntax.
#pragma once

#include <cstdint>
#include <vector>

#include "mpeg/frame.hpp"
#include "sim/random.hpp"

namespace nistream::mpeg {

/// MPEG-1 start codes used by the writer and the segmenter.
inline constexpr std::uint8_t kStartCodePrefix[3] = {0x00, 0x00, 0x01};
inline constexpr std::uint8_t kSequenceHeaderCode = 0xB3;
inline constexpr std::uint8_t kGopHeaderCode = 0xB8;
inline constexpr std::uint8_t kPictureStartCode = 0x00;
inline constexpr std::uint8_t kSequenceEndCode = 0xB7;

struct EncoderParams {
  int width = 352;             // SIF
  int height = 240;
  double fps = 30.0;
  GopPattern gop{};
  /// Mean coded sizes per picture type (bytes). Defaults approximate a
  /// ~1.3 Mbit/s SIF MPEG-1 stream: I ~15 KB, P ~7.5 KB, B ~3.5 KB.
  double mean_i_bytes = 15000;
  double mean_p_bytes = 7500;
  double mean_b_bytes = 3500;
  /// Lognormal shape (sigma of the underlying normal).
  double size_sigma = 0.25;
  std::uint32_t min_frame_bytes = 256;
  std::uint64_t seed = 1;
};

class SyntheticEncoder {
 public:
  explicit SyntheticEncoder(EncoderParams params = {}) : params_{params} {}

  /// Generate the frame table + bitstream for `n_frames` pictures.
  [[nodiscard]] MpegFile generate(int n_frames) const;

  [[nodiscard]] const EncoderParams& params() const { return params_; }

 private:
  EncoderParams params_;
};

}  // namespace nistream::mpeg
