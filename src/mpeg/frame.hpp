// MPEG-1 frame-level types.
//
// The unit of streaming and of scheduling in the paper is an MPEG-I frame
// (§3.1). The scheduler never looks at pixels — it needs the frame type,
// size, and timing — so the substrate models exactly that, plus a real
// start-code-delimited elementary-stream encoding so the segmentation step
// (the paper's "MPEG segmentation program") parses genuine bitstreams.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nistream::mpeg {

/// The paper's reference frame size: the Table 4 critical-path experiments
/// and the Table 5 "1000-byte frame" row all move 1000-byte frames (~250
/// kbit/s at 30 fps — the Figure 7/9 settling bandwidth).
inline constexpr std::uint32_t kPaperFrameBytes = 1000;

/// The paper's Table 5 test file: one whole MPEG file DMAed card-to-card.
inline constexpr std::uint64_t kPaperMpegFileBytes = 773665;

enum class FrameType : std::uint8_t { kI = 1, kP = 2, kB = 3 };

[[nodiscard]] inline const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kI: return "I";
    case FrameType::kP: return "P";
    case FrameType::kB: return "B";
  }
  return "?";
}

inline std::ostream& operator<<(std::ostream& os, FrameType t) {
  return os << to_string(t);
}

/// Metadata of one coded picture.
struct FrameInfo {
  FrameType type = FrameType::kI;
  std::uint32_t bytes = 0;       // coded size, including picture header
  std::uint32_t display_index = 0;
  double pts_seconds = 0.0;      // presentation time at the nominal fps
};

/// A Group-of-Pictures structure: `n` = GOP length (I-frame distance),
/// `m` = prediction distance (P-frame spacing). The classic broadcast GOP is
/// N=12, M=3: IBBPBBPBBPBB.
struct GopPattern {
  int n = 12;
  int m = 3;

  [[nodiscard]] FrameType type_of(int index_in_gop) const {
    if (index_in_gop == 0) return FrameType::kI;
    return (index_in_gop % m == 0) ? FrameType::kP : FrameType::kB;
  }

  /// "IBBPBBPBBPBB"-style rendering, for logs and tests.
  [[nodiscard]] std::string to_string() const {
    std::string s;
    for (int i = 0; i < n; ++i) s += mpeg::to_string(type_of(i));
    return s;
  }
};

/// A whole synthetic MPEG file: frame table + the coded bitstream.
struct MpegFile {
  std::vector<FrameInfo> frames;
  std::vector<std::uint8_t> bitstream;
  double fps = 30.0;

  [[nodiscard]] std::uint64_t total_frame_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& f : frames) sum += f.bytes;
    return sum;
  }
  [[nodiscard]] double mean_frame_bytes() const {
    return frames.empty() ? 0.0
                          : static_cast<double>(total_frame_bytes()) /
                                static_cast<double>(frames.size());
  }
  /// Average coded bit rate at the nominal frame rate.
  [[nodiscard]] double bitrate_bps() const {
    return mean_frame_bytes() * 8.0 * fps;
  }
};

}  // namespace nistream::mpeg
