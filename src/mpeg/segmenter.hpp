// MPEG-1 elementary-stream segmenter.
//
// Reproduces the paper's "MPEG segmentation program developed in [33, 32]"
// that "segments an MPEG encoded file into I, P and B frames and serves as a
// stream producer" (§4.1): scan for start codes, delimit each coded picture,
// and decode its picture_coding_type. The producer tasks feed the resulting
// segments — one frame per scheduling unit — into the DWCS queues.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mpeg/frame.hpp"

namespace nistream::mpeg {

/// One segmented frame: a [offset, offset+bytes) slice of the bitstream.
struct Segment {
  FrameType type = FrameType::kI;
  std::uint64_t offset = 0;   // byte offset of the picture start code
  std::uint32_t bytes = 0;    // picture size up to the next start unit
  std::uint32_t temporal_ref = 0;
};

class Segmenter {
 public:
  /// Segment a whole elementary stream. Non-picture units (sequence/GOP
  /// headers) delimit pictures but produce no segments. Malformed streams
  /// yield the segments found up to the corruption point.
  [[nodiscard]] static std::vector<Segment> segment(
      std::span<const std::uint8_t> bitstream);

  /// Locate the next start code at or after `pos`; returns the offset of the
  /// 00 00 01 prefix, or nullopt.
  [[nodiscard]] static std::optional<std::uint64_t> find_start_code(
      std::span<const std::uint8_t> data, std::uint64_t pos);
};

}  // namespace nistream::mpeg
