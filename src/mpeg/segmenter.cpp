#include "mpeg/segmenter.hpp"

#include "mpeg/encoder.hpp"

namespace nistream::mpeg {

std::optional<std::uint64_t> Segmenter::find_start_code(
    std::span<const std::uint8_t> data, std::uint64_t pos) {
  if (data.size() < 4) return std::nullopt;
  for (std::uint64_t i = pos; i + 3 < data.size(); ++i) {
    if (data[i] == 0x00 && data[i + 1] == 0x00 && data[i + 2] == 0x01) {
      return i;
    }
  }
  return std::nullopt;
}

std::vector<Segment> Segmenter::segment(std::span<const std::uint8_t> bs) {
  std::vector<Segment> out;
  std::optional<std::uint64_t> cur = find_start_code(bs, 0);
  std::optional<Segment> open;  // picture currently being delimited

  const auto close_at = [&](std::uint64_t end) {
    if (open) {
      open->bytes = static_cast<std::uint32_t>(end - open->offset);
      out.push_back(*open);
      open.reset();
    }
  };

  while (cur) {
    const std::uint64_t at = *cur;
    const std::uint8_t code = bs[at + 3];
    close_at(at);  // any start unit terminates the previous picture

    if (code == kPictureStartCode) {
      // Need the two header bytes holding temporal_reference and type.
      if (at + 5 >= bs.size()) break;
      const std::uint32_t b0 = bs[at + 4];
      const std::uint32_t b1 = bs[at + 5];
      const std::uint32_t temporal_ref = (b0 << 2) | (b1 >> 6);
      const std::uint32_t type_bits = (b1 >> 3) & 0x7;
      if (type_bits < 1 || type_bits > 3) break;  // corrupt picture header
      open = Segment{.type = static_cast<FrameType>(type_bits),
                     .offset = at,
                     .bytes = 0,
                     .temporal_ref = temporal_ref};
    } else if (code == kSequenceEndCode) {
      break;
    }
    cur = find_start_code(bs, at + 4);
  }
  close_at(bs.size());
  return out;
}

}  // namespace nistream::mpeg
