#include "apps/experiments.hpp"

#include <algorithm>
#include <memory>
#include <tuple>
#include <utility>

#include "apps/client.hpp"
#include "apps/media_server.hpp"
#include "apps/producer.hpp"
#include "apps/webload.hpp"
#include "dwcs/hw_cost_hook.hpp"
#include "dwcs/scheduler.hpp"
#include "hostos/filesystem.hpp"
#include "hostos/host.hpp"
#include "hw/nic_board.hpp"
#include "mpeg/encoder.hpp"
#include "mpeg/segmenter.hpp"
#include "path/paths.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"

namespace nistream::apps {
namespace {

/// Frame-size model for the load experiments: ~1000-byte frames at 30 fps
/// per stream (≈250 kbit/s), matching the settling bandwidths of
/// Figures 7/9 and the 1000-byte frames of Table 4.
mpeg::EncoderParams small_frame_params(std::uint64_t seed) {
  mpeg::EncoderParams p;
  p.mean_i_bytes = 2200;
  p.mean_p_bytes = 1100;
  p.mean_b_bytes = 600;
  p.size_sigma = 0.2;
  p.min_frame_bytes = 128;
  p.seed = seed;
  return p;
}

double settle_bandwidth(const sim::TimeSeries& bw, sim::Time horizon) {
  // Mean over the middle-to-late run, skipping the tail where producers may
  // have drained.
  return bw.mean_between(sim::Time::sec(horizon.to_sec() * 0.5),
                         sim::Time::sec(horizon.to_sec() * 0.9));
}

}  // namespace

// ---------------------------------------------------------------------------
// Tables 1-3.
// ---------------------------------------------------------------------------

MicrobenchResult run_microbench(const MicrobenchConfig& config) {
  // Paper methodology (§4.2): "we start the scheduler after all frame
  // descriptors have been written into the circular buffer", then time the
  // scheduling + dispatch of every frame; the "w/o Scheduler" variant
  // re-routes execution to where the frame address is already available.
  hw::CpuModel cpu{config.cpu};
  cpu.dcache().set_enabled(config.dcache_enabled);
  dwcs::CpuModelCostHook hook{cpu, config.cal.ni_int,
                              config.arith == dwcs::ArithMode::kNativeFloat
                                  ? config.cal.host_fpu
                                  : config.cal.ni_softfp};

  dwcs::DwcsScheduler::Config scfg;
  scfg.arith = config.arith;
  scfg.repr = config.repr;
  scfg.residency = config.residency;
  scfg.ring_capacity =
      static_cast<std::size_t>(config.n_frames / config.n_streams + 2);
  if (config.decision_overhead_cycles >= 0) {
    scfg.decision_overhead_cycles = config.decision_overhead_cycles;
  }
  dwcs::DwcsScheduler sched{scfg, hook};

  // Segment a synthetic MPEG file; spread frames across the streams in
  // round-robin order, all with the same period (the streams are peers, so
  // deadline ties are the common case — as in the paper's testbed).
  mpeg::SyntheticEncoder enc{small_frame_params(42)};
  const mpeg::MpegFile file = enc.generate(config.n_frames);
  const sim::Time period = sim::Time::ms(33);

  std::vector<dwcs::StreamId> ids;
  for (int i = 0; i < config.n_streams; ++i) {
    ids.push_back(sched.create_stream(
        {.tolerance = {1, 4}, .period = period, .lossy = true},
        sim::Time::zero()));
  }
  for (int i = 0; i < config.n_frames; ++i) {
    const auto& fr = file.frames[static_cast<std::size_t>(i)];
    dwcs::FrameDescriptor d;
    d.frame_id = static_cast<std::uint64_t>(i);
    d.bytes = fr.bytes;
    d.type = fr.type;
    d.enqueued_at = sim::Time::zero();
    d.frame_addr = 0x0400'0000 + static_cast<std::uint64_t>(i) * 0x2000;
    const bool ok =
        sched.enqueue(ids[static_cast<std::size_t>(i) % ids.size()], d,
                      sim::Time::zero());
    (void)ok;
  }

  // --- With the scheduler: drive time along the deadline grid so every
  // frame is serviced on time (the microbench streams at the requested
  // rate; nothing is dropped).
  cpu.reset();
  cpu.dcache().invalidate();
  const std::int64_t dispatch_cycles = 1900;  // driver + NIC doorbell path
  int scheduled = 0;
  sim::Time now = sim::Time::zero();
  while (scheduled < config.n_frames) {
    const auto next = sched.earliest_backlog_deadline();
    if (next && *next > now) now = *next;
    if (sched.schedule_next(now).has_value()) {
      cpu.charge(dispatch_cycles);
      ++scheduled;
    }
  }
  const double total_sched_us = cpu.elapsed().to_us();

  // --- Without the scheduler: FCFS straight out of a circular buffer — the
  // descriptor address is simply popped and the frame dispatched.
  hw::CpuModel cpu2{config.cpu};
  cpu2.dcache().set_enabled(config.dcache_enabled);
  dwcs::CpuModelCostHook hook2{cpu2, config.cal.ni_int, config.cal.ni_softfp};
  dwcs::FrameRing ring{static_cast<std::size_t>(config.n_frames),
                       config.residency, 0x0200'0000, hook2};
  for (int i = 0; i < config.n_frames; ++i) {
    const auto& fr = file.frames[static_cast<std::size_t>(i)];
    ring.push(dwcs::FrameDescriptor{
        .frame_id = static_cast<std::uint64_t>(i), .bytes = fr.bytes,
        .type = fr.type, .enqueued_at = sim::Time::zero(),
        .frame_addr = 0x0400'0000 + static_cast<std::uint64_t>(i) * 0x2000});
  }
  cpu2.reset();
  cpu2.dcache().invalidate();
  while (ring.front().has_value()) {
    ring.pop();
    cpu2.charge(dispatch_cycles);
  }
  const double total_wo_us = cpu2.elapsed().to_us();

  MicrobenchResult r;
  r.total_sched_us = total_sched_us;
  r.avg_frame_sched_us = total_sched_us / config.n_frames;
  r.total_wo_sched_us = total_wo_us;
  r.avg_frame_wo_sched_us = total_wo_us / config.n_frames;
  return r;
}

// ---------------------------------------------------------------------------
// Table 4.
// ---------------------------------------------------------------------------

namespace {

/// Table 4 methodology (§4.2.2): `n` scattered 1000-byte frames, one in
/// flight at a time — a 3 ms gap after every frame.
path::FrameSource table4_source(int n_transfers, std::uint64_t stride,
                                path::Provenance provenance) {
  return path::fixed_frame_source(
      static_cast<std::uint64_t>(n_transfers), mpeg::kPaperFrameBytes,
      [stride](std::uint64_t seq) { return seq * stride; },
      /*stream=*/0, provenance);
}

constexpr path::Pacing kTable4Pacing{
    .burst_frames = 0, .gap = sim::Time::ms(3),
    .where = path::Pacing::Where::kAfterFrame};

std::vector<StageLatency> stage_breakdown(const path::PathStats& stats) {
  std::vector<StageLatency> out;
  out.reserve(stats.stages.size());
  for (const auto& s : stats.stages) out.push_back({s.name, s.ms.mean()});
  return out;
}

}  // namespace

CriticalPathResult run_critical_path(int n_transfers,
                                     const hw::Calibration& cal) {
  CriticalPathResult result;

  // --- Experiment II (Path C): NI-attached disk -> NI CPU -> network.
  {
    sim::Engine eng;
    hw::PciBus bus{eng, cal.pci};
    hw::EthernetSwitch ether{eng, cal.ethernet};
    hw::ScsiDisk disk{eng, cal.disk, 77};
    MpegClient client{eng, ether, cal.ethernet.stack_traversal};
    net::UdpEndpoint ni_ep{eng, ether, cal.ethernet.stack_traversal,
                           net::UdpEndpoint::Receiver{}};
    // Scattered frame layout (the paper measures the random-access cost of
    // 4.2 ms per frame).
    auto p = path::critical_path_c(eng, disk, ni_ep, client.port());
    path::PathStats stats;
    path::pump(p, table4_source(n_transfers, 10'000'000,
                                path::Provenance::kNiDisk),
               kTable4Pacing, stats)
        .detach();
    eng.run();
    result.expt2_ms = client.latency_ms().mean() /* excludes the pacing gap:
        latency is measured per frame from read start to delivery */;
    result.expt2_stages = stage_breakdown(stats);
  }

  // --- Experiment III (Path B): disk on one NI -> PCI p2p DMA -> scheduler
  // NI -> network. The path's stage stamps reproduce the paper's
  // "4.2disk+1.2net+0.015pci" decomposition.
  {
    sim::Engine eng;
    hw::PciBus bus{eng, cal.pci};
    hw::EthernetSwitch ether{eng, cal.ethernet};
    hw::ScsiDisk disk{eng, cal.disk, 78};
    MpegClient client{eng, ether, cal.ethernet.stack_traversal};
    net::UdpEndpoint sched_ep{eng, ether, cal.ethernet.stack_traversal,
                              net::UdpEndpoint::Receiver{}};
    auto p = path::critical_path_b(eng, disk, bus, sched_ep, client.port());
    path::PathStats stats;
    path::pump(p, table4_source(n_transfers, 10'000'000,
                                path::Provenance::kNiDisk),
               kTable4Pacing, stats)
        .detach();
    eng.run();
    result.expt3_ms = client.latency_ms().mean();
    result.expt3_disk_ms = stats.stage_mean_ms("disk");
    result.expt3_pci_ms = stats.stage_mean_ms("pci");
    result.expt3_net_ms = client.net_latency_ms().mean();
    result.expt3_stages = stage_breakdown(stats);
  }

  // --- Experiment I (Path A): host system disk -> host CPU/filesystem ->
  // host NIC -> network, via UFS and via the mounted VxWorks dosFs.
  const auto run_host_path = [&](bool use_ufs) {
    sim::Engine eng;
    hw::EthernetSwitch ether{eng, cal.ethernet};
    hw::ScsiDisk disk{eng, cal.disk, 79};
    hostos::UfsFilesystem ufs{eng, disk, cal.fs};
    hostos::DosFilesystem dosfs{eng, disk, cal.fs};
    MpegClient client{eng, ether, cal.ethernet.stack_traversal};
    net::UdpEndpoint host_ep{eng, ether, net::kHostStackCost,
                             net::UdpEndpoint::Receiver{}};
    auto p = use_ufs
                 ? path::critical_path_a(eng, ufs, host_ep, client.port())
                 : path::critical_path_a(eng, dosfs, host_ep, client.port());
    path::PathStats stats;
    // The host serves the file sequentially (UFS read-ahead applies).
    path::pump(p, table4_source(n_transfers, mpeg::kPaperFrameBytes,
                                path::Provenance::kHostFile),
               kTable4Pacing, stats)
        .detach();
    eng.run();
    return std::make_pair(client.latency_ms().mean(), stage_breakdown(stats));
  };
  std::tie(result.expt1_ufs_ms, result.expt1_ufs_stages) = run_host_path(true);
  std::tie(result.expt1_dosfs_ms, result.expt1_dosfs_stages) =
      run_host_path(false);
  return result;
}

// ---------------------------------------------------------------------------
// Table 5.
// ---------------------------------------------------------------------------

PciBenchResult run_pci_bench(const hw::Calibration& cal) {
  sim::Engine eng;
  hw::PciBus bus{eng, cal.pci};
  PciBenchResult r;
  sim::Time done = sim::Time::never();
  bus.dma_async(mpeg::kPaperMpegFileBytes, [&] { done = eng.now(); });
  eng.run();
  r.mpeg_file_dma_us = done.to_us();
  r.mpeg_file_dma_mbps = static_cast<double>(mpeg::kPaperMpegFileBytes) /
                         (done.to_us() * 1e-6) / 1e6;
  r.pio_word_read_us = bus.pio_read_cost().to_us();
  r.pio_word_write_us = bus.pio_write_cost().to_us();
  return r;
}

// ---------------------------------------------------------------------------
// Figures 6-10.
// ---------------------------------------------------------------------------

namespace {

StreamOutcome make_outcome(MpegClient& client, std::uint64_t stream_id,
                           const dvcm::StreamService& service,
                           sim::Time horizon) {
  StreamOutcome o;
  o.bandwidth_bps = client.bandwidth(stream_id);
  o.qdelay_ms = service.queuing_delay(static_cast<dwcs::StreamId>(stream_id));
  o.frames_delivered = client.frames_received(stream_id);
  o.settle_bandwidth_bps = settle_bandwidth(o.bandwidth_bps, horizon);
  for (const auto& [frame, d] : o.qdelay_ms) {
    o.max_qdelay_ms = std::max(o.max_qdelay_ms, d);
  }
  return o;
}

}  // namespace

LoadExperimentResult run_host_load_experiment(
    const LoadExperimentConfig& config) {
  sim::Engine eng;
  const auto& cal = config.cal;
  // Two CPUs online for the host-based experiments (paper §4.2.3).
  hostos::HostMachine host{eng, /*online_cpus=*/2, cal, sim::Time::sec(1)};
  hw::EthernetSwitch ether{eng, cal.ethernet};
  hw::ScsiDisk disk{eng, cal.disk, config.seed};
  hostos::UfsFilesystem fs{eng, disk, cal.fs};

  dvcm::StreamService::Config scfg;
  scfg.scheduler.ring_capacity = config.ring_capacity;
  scfg.scheduler.deadline_from_completion = true;
  // Host decision path: deeper software stack than the embedded build.
  scfg.scheduler.decision_overhead_cycles = 7000;  // ~35 us at 200 MHz
  scfg.dispatch_cycles = 500000;  // socket syscall + kernel UDP + copies (~2.5 ms)
  HostSchedulerServer server{host, ether, scfg, cal, /*affinity=*/0};
  if (config.scheduler_reservation > 0) {
    host.scheduler().set_reservation(server.process().thread(),
                                     config.scheduler_reservation,
                                     config.reservation_period);
  }

  MpegClient client{eng, ether, cal.ethernet.stack_traversal};

  // Two MPEG streams (s1, s2), ~250 kbit/s each at 30 fps.
  mpeg::SyntheticEncoder enc1{small_frame_params(config.seed + 1)};
  mpeg::SyntheticEncoder enc2{small_frame_params(config.seed + 2)};
  const mpeg::MpegFile f1 = enc1.generate(config.frames_per_stream);
  const mpeg::MpegFile f2 = enc2.generate(config.frames_per_stream);

  // Lossy media streams: a frame that misses its deadline is dropped, not
  // transmitted late — §4.2.3's "packet-dropping leading to lower scheduling
  // quality" is exactly what Figure 7 plots.
  const dwcs::StreamParams sp{.tolerance = {2, 8},
                              .period = sim::Time::ms(33.333),
                              .lossy = true};
  const auto s1 = server.service().create_stream(sp, client.port());
  const auto s2 = server.service().create_stream(sp, client.port());

  hostos::Process& prod1 = host.spawn("mpeg-prod-1");
  hostos::Process& prod2 = host.spawn("mpeg-prod-2");
  ProducerStats ps1, ps2;
  host_file_producer(host, prod1, fs, f1, server.service(), ps1,
                     {.stream = s1, .disk_offset = 0})
      .detach();
  host_file_producer(host, prod2, fs, f2, server.service(), ps2,
                     {.stream = s2, .disk_offset = 100'000'000})
      .detach();

  // Web load on the other NIC/bus segment.
  WebServerModel web{host, {.seed = config.seed + 9}};
  std::unique_ptr<HttperfLoad> load;
  if (config.target_utilization > 0) {
    load = std::make_unique<HttperfLoad>(
        web, host,
        HttperfLoad::Params{.target_utilization = config.target_utilization,
                            .cpus = 2,
                            .stop = config.horizon,
                            .seed = config.seed + 13,
                            .profile = config.target_utilization >= 0.55
                                           ? HttperfLoad::figure6_heavy()
                                           : HttperfLoad::figure6_moderate()});
  }

  eng.run_until(config.horizon);
  client.finish(config.horizon);

  LoadExperimentResult r;
  r.cpu_utilization = host.perfmeter(config.horizon);
  r.avg_utilization =
      r.cpu_utilization.mean_between(sim::Time::zero(), config.horizon);
  for (const auto& [t, v] : r.cpu_utilization.points()) {
    r.peak_utilization = std::max(r.peak_utilization, v);
  }
  r.s1 = make_outcome(client, s1, server.service(), config.horizon);
  r.s2 = make_outcome(client, s2, server.service(), config.horizon);
  return r;
}

LoadExperimentResult run_ni_load_experiment(
    const LoadExperimentConfig& config) {
  sim::Engine eng;
  const auto& cal = config.cal;
  // One host CPU online for the NI experiments (paper §4.2.3).
  hostos::HostMachine host{eng, /*online_cpus=*/1, cal, sim::Time::sec(1)};
  hw::EthernetSwitch ether{eng, cal.ethernet};
  hw::PciBus bus{eng, cal.pci};

  dvcm::StreamService::Config scfg;
  scfg.scheduler.ring_capacity = config.ring_capacity;
  scfg.scheduler.deadline_from_completion = true;
  NiSchedulerServer server{eng, bus, ether, scfg, cal};

  MpegClient client{eng, ether, cal.ethernet.stack_traversal};

  mpeg::SyntheticEncoder enc1{small_frame_params(config.seed + 1)};
  mpeg::SyntheticEncoder enc2{small_frame_params(config.seed + 2)};
  const mpeg::MpegFile f1 = enc1.generate(config.frames_per_stream);
  const mpeg::MpegFile f2 = enc2.generate(config.frames_per_stream);

  // Lossy media streams: a frame that misses its deadline is dropped, not
  // transmitted late — §4.2.3's "packet-dropping leading to lower scheduling
  // quality" is exactly what Figure 7 plots.
  const dwcs::StreamParams sp{.tolerance = {2, 8},
                              .period = sim::Time::ms(33.333),
                              .lossy = true};
  const auto s1 = server.service().create_stream(sp, client.port());
  const auto s2 = server.service().create_stream(sp, client.port());

  // Path C producers: frames come off the board's own disks; the host CPU is
  // not on the data path at all.
  rtos::Task& t1 = server.kernel().spawn("tProd1", 120);
  rtos::Task& t2 = server.kernel().spawn("tProd2", 120);
  ProducerStats ps1, ps2;
  ni_disk_producer(eng, server.board().disk(0), t1, f1, server.service(), ps1,
                   {.stream = s1})
      .detach();
  ni_disk_producer(eng, server.board().disk(1), t2, f2, server.service(), ps2,
                   {.stream = s2})
      .detach();

  // The same 60%-class web load hammers the host — which the NI scheduler
  // never sees.
  WebServerModel web{host, {.seed = config.seed + 9}};
  std::unique_ptr<HttperfLoad> load;
  if (config.target_utilization > 0) {
    load = std::make_unique<HttperfLoad>(
        web, host,
        HttperfLoad::Params{.target_utilization = config.target_utilization,
                            .cpus = 1,
                            .stop = config.horizon,
                            .seed = config.seed + 13,
                            .profile = config.target_utilization >= 0.55
                                           ? HttperfLoad::figure6_heavy()
                                           : HttperfLoad::figure6_moderate()});
  }

  eng.run_until(config.horizon);
  client.finish(config.horizon);

  LoadExperimentResult r;
  r.cpu_utilization = host.perfmeter(config.horizon);
  r.avg_utilization =
      r.cpu_utilization.mean_between(sim::Time::zero(), config.horizon);
  for (const auto& [t, v] : r.cpu_utilization.points()) {
    r.peak_utilization = std::max(r.peak_utilization, v);
  }
  r.s1 = make_outcome(client, s1, server.service(), config.horizon);
  r.s2 = make_outcome(client, s2, server.service(), config.horizon);
  return r;
}

}  // namespace nistream::apps
