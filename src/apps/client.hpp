// Remote MPEG client model.
//
// Attaches to the scheduler's Ethernet port over the switched 100 Mbps
// interconnect and measures what the paper's client-side instrumentation
// measured: per-stream delivered bandwidth (Figures 7 and 9) and end-to-end
// frame latency (Table 4's methodology).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "hw/ethernet.hpp"
#include "net/udp.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"

namespace nistream::apps {

class MpegClient {
 public:
  /// `bw_window`/`bw_sample` configure the bandwidth meter granularity used
  /// for the Figure 7/9 series.
  MpegClient(sim::Engine& engine, hw::EthernetSwitch& ether,
             sim::Time stack_cost = net::kHostStackCost,
             sim::Time bw_window = sim::Time::sec(2),
             sim::Time bw_sample = sim::Time::ms(500))
      : engine_{engine}, bw_window_{bw_window}, bw_sample_{bw_sample},
        endpoint_{engine, ether, stack_cost,
                  [this](const net::Packet& p, sim::Time at) { receive(p, at); }} {}

  [[nodiscard]] int port() const { return endpoint_.port(); }

  /// Delivered-bandwidth series for one stream (bits/second).
  [[nodiscard]] const sim::TimeSeries& bandwidth(std::uint64_t stream_id) {
    return meter(stream_id).series();
  }
  /// Flush bandwidth samples to `t` (call once at the end of a run).
  void finish(sim::Time t) {
    for (auto& [id, m] : meters_) m->finish(t);
  }

  [[nodiscard]] std::uint64_t frames_received(std::uint64_t stream_id) const {
    const auto it = counts_.find(stream_id);
    return it == counts_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t total_frames() const { return total_frames_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// End-to-end latency (enqueue at the server to delivery here), ms.
  [[nodiscard]] const sim::RunningStat& latency_ms() const { return latency_; }
  /// Dispatch-to-delivery (network-only) latency, ms.
  [[nodiscard]] const sim::RunningStat& net_latency_ms() const {
    return net_latency_;
  }

  // Session lifecycle hooks. An RTSP-driven client and a synthetic one share
  // this model: the session plane notifies PAUSE/PLAY/TEARDOWN transitions
  // so the client can audit the data plane against the control plane —
  // frames landing while a stream is paused are counted separately (a
  // handful in flight at the instant of PAUSE is expected; a steady drip
  // means the server ignored the pause).

  void notify_pause(std::uint64_t stream_id) {
    if (paused_.insert(stream_id).second) ++pauses_;
  }
  void notify_resume(std::uint64_t stream_id) {
    if (paused_.erase(stream_id) != 0) ++resumes_;
  }
  /// Stream over (TEARDOWN or end of media): close out its bandwidth meter.
  void notify_end(std::uint64_t stream_id, sim::Time at) {
    paused_.erase(stream_id);
    const auto it = meters_.find(stream_id);
    if (it != meters_.end()) it->second->finish(at);
  }

  [[nodiscard]] bool paused(std::uint64_t stream_id) const {
    return paused_.contains(stream_id);
  }
  [[nodiscard]] std::uint64_t frames_while_paused() const {
    return frames_while_paused_;
  }
  [[nodiscard]] std::uint64_t pauses() const { return pauses_; }
  [[nodiscard]] std::uint64_t resumes() const { return resumes_; }

 private:
  sim::RateMeter& meter(std::uint64_t stream_id) {
    auto it = meters_.find(stream_id);
    if (it == meters_.end()) {
      it = meters_
               .emplace(stream_id, std::make_unique<sim::RateMeter>(
                                       bw_window_, bw_sample_,
                                       "stream" + std::to_string(stream_id)))
               .first;
    }
    return *it->second;
  }

  void receive(const net::Packet& p, sim::Time at) {
    if (paused_.contains(p.stream_id)) ++frames_while_paused_;
    meter(p.stream_id).record(at, p.bytes);
    ++counts_[p.stream_id];
    ++total_frames_;
    total_bytes_ += p.bytes;
    latency_.add((at - p.enqueued_at).to_ms());
    net_latency_.add((at - p.dispatched_at).to_ms());
  }

  sim::Engine& engine_;
  sim::Time bw_window_;
  sim::Time bw_sample_;
  net::UdpEndpoint endpoint_;
  std::map<std::uint64_t, std::unique_ptr<sim::RateMeter>> meters_;
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::set<std::uint64_t> paused_;
  std::uint64_t frames_while_paused_ = 0;
  std::uint64_t pauses_ = 0;
  std::uint64_t resumes_ = 0;
  std::uint64_t total_frames_ = 0;
  std::uint64_t total_bytes_ = 0;
  sim::RunningStat latency_;
  sim::RunningStat net_latency_;
};

}  // namespace nistream::apps
