// Web-server load antagonist: Apache process-pool model + httperf client.
//
// Figure 6's load profiles come from "httperf" clients hammering an Apache
// 1.3.12 with "a maximum of 10 server processes and starting process pool
// with five server processes". The model reproduces the CPU-contention
// structure: a pool of host processes, each serving queued requests by
// consuming CPU, with pool growth under backlog. Request arrivals are
// Poisson at a rate chosen to hit a target average utilization; service
// demand is drawn per request, so utilization fluctuates the way the paper's
// perfmeter traces do (peaks well above the average).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "hostos/host.hpp"
#include "sim/coro.hpp"
#include "sim/random.hpp"

namespace nistream::apps {

class WebServerModel {
 public:
  struct Params {
    int initial_processes = 5;   // Apache StartServers
    int max_processes = 10;      // MaxClients
    /// Mean CPU demand per request (dynamic-ish content on a 200 MHz PPro;
    /// CGI-era pages are tens of ms of CPU).
    sim::Time mean_request_cpu = sim::Time::ms(15);
    /// Request CPU demand is exponential around the mean (mix of static
    /// pages and heavier hits).
    std::uint64_t seed = 7;
  };

  WebServerModel(hostos::HostMachine& host, Params p)
      : host_{host}, params_{p}, rng_{p.seed},
        queue_{host.engine()} {
    for (int i = 0; i < p.initial_processes; ++i) spawn_worker();
  }

  WebServerModel(const WebServerModel&) = delete;
  WebServerModel& operator=(const WebServerModel&) = delete;

  /// A request arrived from the network (called by HttperfLoad).
  void submit_request() {
    ++arrived_;
    // Apache grows the pool when requests back up.
    if (queue_.size() > 2 && workers_ < params_.max_processes) spawn_worker();
    queue_.send(rng_.exponential(params_.mean_request_cpu.to_us()));
  }

  [[nodiscard]] std::uint64_t requests_arrived() const { return arrived_; }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }
  [[nodiscard]] int pool_size() const { return workers_; }
  [[nodiscard]] std::size_t backlog() const { return queue_.size(); }

 private:
  void spawn_worker() {
    ++workers_;
    hostos::Process& proc =
        host_.spawn("httpd-" + std::to_string(workers_));
    [](WebServerModel& self, hostos::Process& p) -> sim::Coro {
      for (;;) {
        const double cpu_us = co_await self.queue_.receive();
        co_await p.consume(sim::Time::us(cpu_us));
        ++self.served_;
      }
    }(*this, proc).detach();
  }

  hostos::HostMachine& host_;
  Params params_;
  sim::Rng rng_;
  sim::Mailbox<double> queue_;  // per-request CPU demand in us
  int workers_ = 0;
  std::uint64_t arrived_ = 0;
  std::uint64_t served_ = 0;
};

/// Open-loop HTTP load generator (the remote Linux httperf boxes).
///
/// Figure 6's traces are not stationary: the load ramps up, holds a
/// near-saturation plateau for ~40 s, and ramps down. The generator follows
/// a piecewise-constant intensity profile shaped like those traces, scaled
/// so the *time-average* utilization hits the requested target — which means
/// the plateau pushes the machine into the >80% region where the host
/// scheduler visibly starves (Figures 7-8).
class HttperfLoad {
 public:
  /// (start second, intensity multiplier) breakpoints, piecewise constant.
  using Profile = std::vector<std::pair<double, double>>;

  struct Params {
    /// Requested average machine utilization (0..1) across `cpus` CPUs.
    double target_utilization = 0.45;
    int cpus = 2;
    sim::Time stop = sim::Time::sec(100);
    std::uint64_t seed = 11;
    /// Empty profile = constant intensity.
    Profile profile{};
  };

  /// The Figure 6 60%-average trace shape: ramp from 10 s, plateau past
  /// saturation 40-80 s, tail off.
  [[nodiscard]] static Profile figure6_heavy() {
    return {{0, 0.5}, {10, 1.1}, {25, 1.6}, {40, 1.8}, {80, 0.2}};
  }
  /// The Figure 6 45%-average trace shape: long moderate plateau.
  [[nodiscard]] static Profile figure6_moderate() {
    return {{0, 0.35}, {15, 1.0}, {20, 1.25}, {80, 0.3}};
  }

  HttperfLoad(WebServerModel& server, hostos::HostMachine& host, Params p,
              sim::Time mean_request_cpu = sim::Time::ms(15))
      : server_{server}, params_{std::move(p)}, rng_{params_.seed} {
    if (params_.profile.empty()) params_.profile = {{0.0, 1.0}};
    const double capacity_us_per_s = 1e6 * params_.cpus;
    const double target_rate = params_.target_utilization *
                               capacity_us_per_s / mean_request_cpu.to_us();
    base_rate_per_sec_ = target_rate / average_multiplier();
    [](HttperfLoad& self, sim::Engine& eng) -> sim::Coro {
      while (eng.now() < self.params_.stop) {
        const double rate =
            self.base_rate_per_sec_ * self.multiplier_at(eng.now().to_sec());
        if (rate <= 0) {
          co_await sim::Delay{eng, sim::Time::ms(500)};
          continue;
        }
        co_await sim::Delay{eng,
                            sim::Time::sec(self.rng_.exponential(1.0 / rate))};
        if (eng.now() < self.params_.stop) self.server_.submit_request();
      }
    }(*this, host.engine()).detach();
  }

  [[nodiscard]] double base_rate_per_sec() const { return base_rate_per_sec_; }
  [[nodiscard]] double multiplier_at(double t_sec) const {
    double m = params_.profile.front().second;
    for (const auto& [start, mult] : params_.profile) {
      if (t_sec >= start) m = mult;
    }
    return m;
  }

 private:
  [[nodiscard]] double average_multiplier() const {
    const double stop = params_.stop.to_sec();
    double sum = 0;
    for (std::size_t i = 0; i < params_.profile.size(); ++i) {
      const double s = params_.profile[i].first;
      const double e =
          i + 1 < params_.profile.size() ? params_.profile[i + 1].first : stop;
      if (s >= stop) break;
      sum += (std::min(e, stop) - s) * params_.profile[i].second;
    }
    return sum / stop;
  }

  WebServerModel& server_;
  Params params_;
  sim::Rng rng_;
  double base_rate_per_sec_ = 0;
};

}  // namespace nistream::apps
