// Stream producers: the MPEG segmentation processes that feed frames into
// scheduler queues (§4.1), in the three frame-transfer configurations of
// Figure 3 — now thin wrappers that pump a path::FramePath composition
// (src/path/paths.hpp):
//
// * ni_disk_producer  — a wind task on a disk-attached i960 board. Path C
//   when the scheduler lives on the same board (Disk→Segment→Enqueue);
//   Path B when config.cross_bus routes each frame over PCI p2p DMA to a
//   dedicated scheduler-NI (Disk→Segment→Pci→Enqueue).
// * ni_striped_producer — Path C off a Tiger-style striped volume.
// * host_file_producer — a host process reading through a host filesystem
//   (UFS or mounted dosFs) into a host-resident scheduler: Path A
//   (Fs→Segment→Enqueue).
//
// Producers respect ring backpressure: a rejected frame is retried after a
// short backoff instead of being lost. Stats update per frame, so a
// producer cut short by a fault still reports truthfully — and because
// ProducerStats is path::PathStats, every producer now carries a per-stage
// latency breakdown too.
#pragma once

#include <cstdint>

#include "dvcm/stream_service.hpp"
#include "hostos/filesystem.hpp"
#include "hostos/host.hpp"
#include "hw/pci.hpp"
#include "hw/scsi_disk.hpp"
#include "hw/striped_volume.hpp"
#include "mpeg/frame.hpp"
#include "path/paths.hpp"
#include "rtos/wind.hpp"
#include "sim/coro.hpp"

namespace nistream::apps {

/// Per-frame CPU cost of segmenting (start-code scan + header decode).
inline constexpr std::int64_t kSegmentationCyclesPerFrame =
    path::kSegmentationCyclesPerFrame;
/// Backoff before retrying a ring-full enqueue.
inline constexpr sim::Time kEnqueueBackoff = path::kEnqueueBackoff;

/// Producer outcome counters + the per-stage latency breakdown.
using ProducerStats = path::PathStats;

/// Production pacing. The paper's producers prime the scheduler queues with
/// an initial burst (the player's pre-roll buffer fill), then feed frames at
/// the stream's nominal rate. An unpaced producer (gap == 0) pushes as fast
/// as the disk allows.
using ProducerPacing = path::Pacing;

/// Everything about a producer's assignment that isn't a hardware resource:
/// which stream it feeds, where its file starts on the device, how it paces,
/// and (NI producers only) whether frames cross the PCI bus to a dedicated
/// scheduler card (Path B) or stay on-card (Path C).
struct ProducerConfig {
  dwcs::StreamId stream = 0;
  std::uint64_t disk_offset = 0;       // file base on the disk / filesystem
  ProducerPacing pacing = {};
  hw::PciBus* cross_bus = nullptr;     // non-null: Path B's p2p DMA hop
};

namespace detail {

/// Own the path for the life of the pump: the coroutine frame keeps the
/// FramePath (moved in) and the source closure alive until the file drains.
inline sim::Coro pump_owned(path::FramePath p, path::FrameSource source,
                            path::Pacing pacing, ProducerStats& stats) {
  co_await path::pump(p, std::move(source), pacing, stats);
}

}  // namespace detail

/// Produce every frame of `file` from an NI-attached disk into `service`.
inline sim::Coro ni_disk_producer(sim::Engine& engine, hw::ScsiDisk& disk,
                                  rtos::Task& task, const mpeg::MpegFile& file,
                                  dvcm::StreamService& service,
                                  ProducerStats& stats,
                                  const ProducerConfig& config = {}) {
  auto p = config.cross_bus
               ? path::producer_path_b(engine, disk, task, *config.cross_bus,
                                       service)
               : path::producer_path_c(engine, disk, task, service);
  return detail::pump_owned(
      std::move(p),
      path::mpeg_file_source(file, config.stream, config.disk_offset,
                             path::Provenance::kNiDisk),
      config.pacing, stats);
}

/// Path C variant reading off a striped volume (config.cross_bus unused:
/// the volume's members already fan out across the board's channels).
inline sim::Coro ni_striped_producer(sim::Engine& engine,
                                     hw::StripedVolume& volume,
                                     rtos::Task& task,
                                     const mpeg::MpegFile& file,
                                     dvcm::StreamService& service,
                                     ProducerStats& stats,
                                     const ProducerConfig& config = {}) {
  return detail::pump_owned(
      path::producer_path_c_striped(engine, volume, task, service),
      path::mpeg_file_source(file, config.stream, config.disk_offset,
                             path::Provenance::kStripedVolume),
      config.pacing, stats);
}

/// Filesystem abstraction for the host producer (UFS or dosFs).
enum class HostFs { kUfs, kDosFs };

/// Produce every frame of `file` from a host filesystem into a host-resident
/// scheduler service (Path A). Filesystem overheads and segmentation both
/// consume the producer process's CPU, so they contend with everything else
/// on the host. Fs is hostos::UfsFilesystem or hostos::DosFilesystem.
template <typename Fs>
sim::Coro host_file_producer(hostos::HostMachine& host, hostos::Process& proc,
                             Fs& fs, const mpeg::MpegFile& file,
                             dvcm::StreamService& service,
                             ProducerStats& stats,
                             const ProducerConfig& config = {}) {
  return detail::pump_owned(
      path::producer_path_a(host, proc, fs, service),
      path::mpeg_file_source(file, config.stream, config.disk_offset,
                             path::Provenance::kHostFile),
      config.pacing, stats);
}

}  // namespace nistream::apps
