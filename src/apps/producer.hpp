// Stream producers: the MPEG segmentation processes that feed frames into
// scheduler queues (§4.1), in the three frame-transfer configurations of
// Figure 3.
//
// * NiDiskProducer  — a wind task on a disk-attached i960 board. Path C when
//   the scheduler lives on the same board (no bus at all); Path B when the
//   frames cross the PCI bus by peer-to-peer DMA to a dedicated
//   scheduler-NI.
// * HostFileProducer — a host process reading the file through a host
//   filesystem (UFS or mounted dosFs) into a host-resident scheduler:
//   Path A.
//
// Producers respect ring backpressure: a rejected frame is retried after a
// short backoff instead of being lost.
#pragma once

#include <cstdint>

#include "dvcm/stream_service.hpp"
#include "hostos/filesystem.hpp"
#include "hostos/host.hpp"
#include "hw/pci.hpp"
#include "hw/scsi_disk.hpp"
#include "mpeg/frame.hpp"
#include "rtos/wind.hpp"
#include "sim/coro.hpp"

namespace nistream::apps {

/// Per-frame CPU cost of segmenting (start-code scan + header decode).
inline constexpr std::int64_t kSegmentationCyclesPerFrame = 900;
/// Backoff before retrying a ring-full enqueue.
inline constexpr sim::Time kEnqueueBackoff = sim::Time::ms(5);

struct ProducerStats {
  std::uint64_t frames_produced = 0;
  std::uint64_t retries = 0;
  bool finished = false;
  sim::Time finished_at;
};

/// Production pacing. The paper's producers prime the scheduler queues with
/// an initial burst (the player's pre-roll buffer fill), then feed frames at
/// the stream's nominal rate. An unpaced producer (pace == 0) pushes as fast
/// as the disk allows.
struct ProducerPacing {
  int burst_frames = 0;       // frames pushed back-to-back at start
  sim::Time pace = sim::Time::zero();  // inter-frame gap afterwards
};

/// Produce every frame of `file` from an NI-attached disk into `service`.
/// `cross_bus` non-null models Path B: each frame DMAs across the PCI bus to
/// the scheduler card; null is Path C (same card, no bus traffic).
inline sim::Coro ni_disk_producer(sim::Engine& engine, hw::ScsiDisk& disk,
                                  rtos::Task& task, const mpeg::MpegFile& file,
                                  dvcm::StreamService& service,
                                  dwcs::StreamId stream, hw::PciBus* cross_bus,
                                  ProducerStats& stats,
                                  std::uint64_t disk_offset = 0,
                                  ProducerPacing pacing = {}) {
  std::uint64_t offset = disk_offset;
  int produced = 0;
  for (const auto& frame : file.frames) {
    if (pacing.pace > sim::Time::zero() && produced >= pacing.burst_frames) {
      co_await sim::Delay{engine, pacing.pace};
    }
    co_await disk.read(offset, frame.bytes);
    offset += frame.bytes;
    co_await task.consume_cycles(kSegmentationCyclesPerFrame);
    if (cross_bus) co_await cross_bus->dma(frame.bytes);  // Path B hop
    while (!service.enqueue(stream, frame.bytes, frame.type)) {
      ++stats.retries;
      co_await sim::Delay{engine, kEnqueueBackoff};
    }
    ++stats.frames_produced;
    ++produced;
  }
  stats.finished = true;
  stats.finished_at = engine.now();
}

/// Filesystem abstraction for the host producer (UFS or dosFs).
enum class HostFs { kUfs, kDosFs };

/// Produce every frame of `file` from a host filesystem into a host-resident
/// scheduler service (Path A). Filesystem overheads and segmentation both
/// consume the producer process's CPU, so they contend with everything else
/// on the host.
inline sim::Coro host_file_producer(hostos::HostMachine& host,
                                    hostos::Process& proc,
                                    hostos::UfsFilesystem& fs,
                                    const mpeg::MpegFile& file,
                                    dvcm::StreamService& service,
                                    dwcs::StreamId stream,
                                    ProducerStats& stats,
                                    std::uint64_t file_base = 0,
                                    ProducerPacing pacing = {}) {
  sim::Engine& engine = host.engine();
  std::uint64_t offset = file_base;
  int produced = 0;
  for (const auto& frame : file.frames) {
    if (pacing.pace > sim::Time::zero() && produced >= pacing.burst_frames) {
      co_await sim::Delay{engine, pacing.pace};
    }
    co_await fs.read(offset, frame.bytes, &host.scheduler(), &proc.thread());
    offset += frame.bytes;
    co_await proc.consume_cycles(kSegmentationCyclesPerFrame);
    while (!service.enqueue(stream, frame.bytes, frame.type)) {
      ++stats.retries;
      co_await sim::Delay{engine, kEnqueueBackoff};
    }
    ++stats.frames_produced;
    ++produced;
  }
  stats.finished = true;
  stats.finished_at = engine.now();
}

}  // namespace nistream::apps
