// The two media-server organizations the paper compares.
//
// * HostSchedulerServer — DWCS runs as a Solaris process on the host CPU
//   (optionally pbind-bound), dispatching through a plain (82557-style) NIC.
//   Frames traverse the host: this is Path A of Figure 3 and the setup of
//   Figures 6-8.
// * NiSchedulerServer — DWCS runs inside the DVCM DWCS extension on an
//   i960 RD board under VxWorks; the host (or a peer NI) only produces
//   frames. This is Paths B/C and the setup of Figures 9-10.
#pragma once

#include <algorithm>
#include <memory>

#include "apps/producer.hpp"
#include "dvcm/dwcs_extension.hpp"
#include "dvcm/host_api.hpp"
#include "dvcm/runtime.hpp"
#include "dvcm/stream_service.hpp"
#include "hostos/host.hpp"
#include "hw/nic_board.hpp"
#include "net/udp.hpp"
#include "rtos/wind.hpp"
#include "sim/random.hpp"

namespace nistream::apps {

class HostSchedulerServer {
 public:
  /// `affinity` >= 0 binds the scheduler process to that CPU (Solaris pbind,
  /// as the paper does).
  HostSchedulerServer(hostos::HostMachine& host, hw::EthernetSwitch& ether,
                      dvcm::StreamService::Config config = {},
                      const hw::Calibration& cal = {}, int affinity = -1)
      : service_{host.engine(), config, host.cpu_model(), cal.host_int,
                 cal.host_fpu, /*memory=*/nullptr},
        endpoint_{host.engine(), ether, net::kHostStackCost,
                  net::UdpEndpoint::Receiver{}},
        proc_{host.spawn("dwcs-sched", hostos::kDefaultPriority, affinity)} {
    service_.run(proc_, endpoint_).detach();
  }

  [[nodiscard]] dvcm::StreamService& service() { return service_; }
  [[nodiscard]] net::UdpEndpoint& endpoint() { return endpoint_; }
  [[nodiscard]] hostos::Process& process() { return proc_; }

 private:
  dvcm::StreamService service_;
  net::UdpEndpoint endpoint_;
  hostos::Process& proc_;
};

class NiSchedulerServer {
 public:
  NiSchedulerServer(sim::Engine& engine, hw::PciBus& bus,
                    hw::EthernetSwitch& ether,
                    dvcm::StreamService::Config config = {},
                    const hw::Calibration& cal = {})
      : board_{"scheduler-ni", engine, bus, ether,
               [](const hw::EthFrame&) {}, cal},
        kernel_{engine, board_.cpu(), cal.rtos, cal.interconnect.cores},
        runtime_{board_, kernel_},
        host_api_{engine, board_.i2o()} {
    // A hierarchical scheduler on a multi-core board inherits the board's
    // interconnect hop cost unless the config already set one — the
    // calibration is the single source of hardware constants.
    if (config.scheduler.repr == dwcs::ReprKind::kHierarchical &&
        config.scheduler.hierarchical.hop_cycles == 0) {
      config.scheduler.hierarchical.hop_cycles =
          cal.interconnect.core_hop_cycles;
    }
    auto ext = std::make_unique<dvcm::DwcsExtension>(config, ether, cal);
    extension_ = ext.get();
    runtime_.start();
    runtime_.load_extension(std::move(ext));
  }

  [[nodiscard]] hw::NicBoard& board() { return board_; }
  [[nodiscard]] rtos::WindKernel& kernel() { return kernel_; }
  [[nodiscard]] dvcm::VcmRuntime& runtime() { return runtime_; }
  [[nodiscard]] dvcm::VcmHostApi& host_api() { return host_api_; }
  [[nodiscard]] dvcm::DwcsExtension& extension() { return *extension_; }
  [[nodiscard]] dvcm::StreamService& service() { return extension_->service(); }

  /// Gate this server on a board-health state machine: the board stops
  /// fetching I2O messages and the stream service stalls/rejects while the
  /// health object says the board is down or hung.
  void attach_health(fault::BoardHealth& h) {
    board_.set_health(&h);
    service().set_health(&h);
  }

 private:
  hw::NicBoard board_;
  rtos::WindKernel kernel_;
  dvcm::VcmRuntime runtime_;
  dvcm::VcmHostApi host_api_;
  dvcm::DwcsExtension* extension_;
};

// ---------------------------------------------------------------------------
// Producer wiring helpers.
// ---------------------------------------------------------------------------

/// A synthetic stream's shape: jittered frame sizes around a mean, the
/// broadcast 12-frame GOP cadence (one I per 12), one frame per period.
struct SyntheticStreamSpec {
  std::uint32_t mean_frame_bytes = 1000;
  int n_frames = 0;
  sim::Time period = sim::Time::ms(33);
  std::uint64_t seed = 1;
};

/// Frame source drawing the spec's jittered sizes (sizes vary ~N(mean,
/// 0.15*mean), floored at 128 bytes — the cluster load generators' model).
inline path::FrameSource synthetic_stream_source(dwcs::StreamId stream,
                                                 const SyntheticStreamSpec& spec) {
  return [stream, spec, rng = sim::Rng{spec.seed}](
             std::uint64_t seq, path::StagedFrame& f) mutable {
    if (seq >= static_cast<std::uint64_t>(spec.n_frames)) return false;
    f.stream = stream;
    f.bytes = static_cast<std::uint32_t>(std::max(
        128.0, rng.normal(spec.mean_frame_bytes,
                          spec.mean_frame_bytes * 0.15)));
    f.type = seq % 12 == 0 ? mpeg::FrameType::kI : mpeg::FrameType::kP;
    f.provenance = path::Provenance::kSynthetic;
    return true;
  };
}

/// Spawn a paced synthetic producer (Segment -> Enqueue) feeding `stream`
/// on `server`'s ring from wind task `task` — the cluster nodes' per-stream
/// load generators. The pump detaches; `stats` must outlive the run.
inline void spawn_synthetic_producer(NiSchedulerServer& server,
                                     rtos::Task& task, dwcs::StreamId stream,
                                     const SyntheticStreamSpec& spec,
                                     ProducerStats& stats) {
  sim::Engine& engine = server.board().engine();
  detail::pump_owned(
      path::synthetic_producer_path(engine, task, server.service()),
      synthetic_stream_source(stream, spec),
      path::Pacing{.burst_frames = 0, .gap = spec.period,
                   .where = path::Pacing::Where::kAfterFrame},
      stats)
      .detach();
}

}  // namespace nistream::apps
