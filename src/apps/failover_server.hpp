// Watchdog-driven NI -> host failover for the media server.
//
// The paper's answer to host interference is to move DWCS onto the NI; this
// server answers the follow-up question — what happens when the NI itself
// dies. It fronts a NiSchedulerServer with a host-side watchdog (DVCM
// heartbeat, dvcm/heartbeat.hpp) and keeps a HostSchedulerServer in reserve:
//
//   NI mode ──watchdog trips──▶ degraded (host) mode
//      ▲                              │
//      └──────heartbeat ack──────────-┘  (fail-back, re-admitting streams
//                                         the host admitted meanwhile)
//
// Stream identity is owned HERE, in a host-side shadow registry captured at
// admission time — the one piece of state that must survive the NI, because
// the NI's copy dies with the board. Failover re-admits every registered
// stream into the standby host scheduler via dvcm::StreamCheckpoint; frames
// queued on the dead board are purged (lost, observed as drops — exactly
// what a viewer would see). The WindowViolationMonitor watches the outcome
// stream of BOTH schedulers under the same stream ids, so the QoS cost of a
// crash/failover/failback cycle is a first-class measured quantity.
//
// Single global id space: both services admit streams in registry order
// starting at 0, so one id is valid in NI mode, degraded mode, and the
// monitor. The assert in StreamService::restore enforces the agreement.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "apps/media_server.hpp"
#include "dvcm/heartbeat.hpp"
#include "dwcs/monitor.hpp"

namespace nistream::apps {

class FailoverMediaServer {
 public:
  struct Config {
    dvcm::StreamService::Config service{};
    dvcm::WatchdogConfig watchdog{};
    /// CPU binding for the standby host scheduler process (Solaris pbind).
    int host_affinity = -1;
  };

  // Split in two because GCC rejects `Config config = {}` as a default
  // argument for a nested aggregate inside its own enclosing class.
  FailoverMediaServer(hostos::HostMachine& host, hw::PciBus& bus,
                      hw::EthernetSwitch& ether)
      : FailoverMediaServer{host, bus, ether, Config{}} {}

  FailoverMediaServer(hostos::HostMachine& host, hw::PciBus& bus,
                      hw::EthernetSwitch& ether, Config config,
                      const hw::Calibration& cal = {})
      : host_{host},
        ether_{ether},
        cal_{cal},
        config_{config},
        ni_{host.engine(), bus, ether, config.service, cal},
        watchdog_{host.engine(), ni_.host_api(), config.watchdog} {
    auto hb = std::make_unique<dvcm::HeartbeatExtension>();
    heartbeat_ = hb.get();
    ni_.runtime().load_extension(std::move(hb));
    observe(ni_.service());
    watchdog_.set_on_trip([this](sim::Time now) { fail_over(now); });
    watchdog_.set_on_recovery([this](sim::Time now, std::uint64_t inc) {
      fail_back(now, inc);
    });
    watchdog_.start();
  }

  FailoverMediaServer(const FailoverMediaServer&) = delete;
  FailoverMediaServer& operator=(const FailoverMediaServer&) = delete;

  /// Admit a stream. Registered in the host-side shadow registry first (the
  /// registry must outlive the NI), then created in whichever scheduler is
  /// active.
  dwcs::StreamId create_stream(const dwcs::StreamParams& params,
                               int client_port) {
    const auto expected = static_cast<dwcs::StreamId>(registry_.size());
    registry_.push_back({.id = expected,
                         .params = params,
                         .client_port = client_port,
                         .frames_sent = 0});
    monitor_.add_stream(params.tolerance);
    const auto id = active().create_stream(params, client_port);
    assert(id == expected);
    return id;
  }

  /// Producer side, routed to the active scheduler. A rejected frame (board
  /// down, ring full, memory exhausted) is lost from the viewer's point of
  /// view and recorded as a drop against the stream's window.
  bool enqueue(dwcs::StreamId id, std::uint32_t bytes, mpeg::FrameType type) {
    if (active().enqueue(id, bytes, type)) return true;
    ++rejected_;
    monitor_.record(id, dwcs::WindowViolationMonitor::Outcome::kDropped);
    return false;
  }

  /// The scheduler currently serving traffic.
  [[nodiscard]] dvcm::StreamService& active() {
    return degraded_ ? host_server_->service() : ni_.service();
  }

  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] NiSchedulerServer& ni() { return ni_; }
  [[nodiscard]] dvcm::HostWatchdog& watchdog() { return watchdog_; }
  [[nodiscard]] dwcs::WindowViolationMonitor& monitor() { return monitor_; }
  [[nodiscard]] HostSchedulerServer* host_server() {
    return host_server_.get();
  }

  struct Metrics {
    std::uint64_t failovers = 0;
    std::uint64_t failbacks = 0;
    std::uint64_t frames_purged = 0;   // queued on the NI when it died
    std::uint64_t frames_rejected = 0; // refused at admission (incl. offline)
    /// Board-down to host-takeover: the watchdog's detection latency. Only
    /// meaningful when the NI has an attached BoardHealth (else 0).
    double failover_latency_ms = 0;
    /// Board-down to NI re-instated (fail-back complete).
    double recovery_time_ms = 0;
  };
  [[nodiscard]] Metrics metrics() const {
    Metrics m = metrics_;
    m.frames_rejected = rejected_;
    return m;
  }

 private:
  void observe(dvcm::StreamService& svc) {
    svc.set_dispatch_observer(
        [this](dwcs::StreamId id, const dwcs::Dispatch& d) {
          monitor_.record(id,
                          d.late
                              ? dwcs::WindowViolationMonitor::Outcome::kLate
                              : dwcs::WindowViolationMonitor::Outcome::kOnTime);
        });
    svc.set_drop_observer(
        [this](dwcs::StreamId id, const dwcs::FrameDescriptor&) {
          monitor_.record(id,
                          dwcs::WindowViolationMonitor::Outcome::kDropped);
        });
  }

  void fail_over(sim::Time now) {
    if (degraded_) return;
    degraded_ = true;
    ++metrics_.failovers;
    // Frames queued on the dead board are gone; purging makes the loss
    // visible to the monitor and releases the card-memory accounting.
    metrics_.frames_purged += ni_.service().purge_backlog();
    if (const auto* h = ni_.board().health()) {
      if (h->last_down_at() > sim::Time::zero()) {
        metrics_.failover_latency_ms = (now - h->last_down_at()).to_ms();
      }
    }
    if (!host_server_) {
      // Lazily built: in NI mode the host runs no scheduler at all (that is
      // the paper's whole point), so the standby costs nothing until needed.
      host_server_ = std::make_unique<HostSchedulerServer>(
          host_, ether_, config_.service, cal_, config_.host_affinity);
      observe(host_server_->service());
    }
    host_server_->service().restore(checkpoint_from_registry(
        host_server_->service().scheduler().stream_count()));
  }

  void fail_back(sim::Time now, std::uint64_t /*incarnation*/) {
    if (!degraded_) return;
    degraded_ = false;
    ++metrics_.failbacks;
    // Streams admitted while degraded exist only on the host; re-admit them
    // into the NI so both sides agree on the id space again. (Streams the NI
    // already knows keep their board-side window state — a rebooted board
    // would also re-create them here if its service were rebuilt.)
    ni_.service().restore(
        checkpoint_from_registry(ni_.service().scheduler().stream_count()));
    if (const auto* h = ni_.board().health()) {
      if (h->last_down_at() > sim::Time::zero()) {
        metrics_.recovery_time_ms = (now - h->last_down_at()).to_ms();
      }
    }
  }

  /// Checkpoints for every registered stream with id >= `from` — the ones a
  /// freshly built (or stale) service is missing.
  [[nodiscard]] std::vector<dvcm::StreamCheckpoint> checkpoint_from_registry(
      std::size_t from) const {
    return {registry_.begin() + static_cast<std::ptrdiff_t>(from),
            registry_.end()};
  }

  hostos::HostMachine& host_;
  hw::EthernetSwitch& ether_;
  hw::Calibration cal_;
  Config config_;
  NiSchedulerServer ni_;
  dvcm::HeartbeatExtension* heartbeat_ = nullptr;
  dvcm::HostWatchdog watchdog_;
  std::unique_ptr<HostSchedulerServer> host_server_;
  std::vector<dvcm::StreamCheckpoint> registry_;
  dwcs::WindowViolationMonitor monitor_;
  Metrics metrics_;
  std::uint64_t rejected_ = 0;
  bool degraded_ = false;
};

}  // namespace nistream::apps
