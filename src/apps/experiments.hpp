// Experiment drivers: one function per table/figure of the paper.
//
// Every bench binary in bench/ is a thin printer around these functions, and
// the integration tests assert the *shape* results the paper reports (who
// wins, by what factor, where the crossovers are). See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dwcs/cost.hpp"
#include "dwcs/repr.hpp"
#include "hw/calibration.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace nistream::apps {

// ---------------------------------------------------------------------------
// Tables 1-3: embedded scheduler microbenchmarks.
// ---------------------------------------------------------------------------

struct MicrobenchConfig {
  dwcs::ArithMode arith = dwcs::ArithMode::kFixedPoint;
  bool dcache_enabled = false;
  dwcs::ReprKind repr = dwcs::ReprKind::kDualHeap;
  dwcs::DescriptorResidency residency =
      dwcs::DescriptorResidency::kPinnedMemory;
  /// Paper workload: ~151 frames pre-loaded into the circular buffers.
  int n_frames = 151;
  int n_streams = 4;
  hw::CpuParams cpu = hw::kI960Rd;
  /// Fixed per-decision control-flow cycles; <0 uses the DWCS default
  /// (embedded build). Host builds carry a heavier fixed path (user/kernel
  /// crossings, timer reads) — see the headline_overhead bench.
  std::int64_t decision_overhead_cycles = -1;
  hw::Calibration cal{};
};

/// One row-set of Table 1/2/3.
struct MicrobenchResult {
  double total_sched_us = 0;
  double avg_frame_sched_us = 0;
  double total_wo_sched_us = 0;
  double avg_frame_wo_sched_us = 0;

  [[nodiscard]] double overhead_us() const {
    return avg_frame_sched_us - avg_frame_wo_sched_us;
  }
};

[[nodiscard]] MicrobenchResult run_microbench(const MicrobenchConfig& config);

// ---------------------------------------------------------------------------
// Table 4: critical-path frame-transfer latency.
// ---------------------------------------------------------------------------

/// Mean server-side latency of one pipeline stage, as stamped by the
/// path::FramePath the experiment ran on.
struct StageLatency {
  std::string stage;
  double mean_ms = 0;
};

struct CriticalPathResult {
  double expt1_ufs_ms = 0;     // Path A via UFS
  double expt1_dosfs_ms = 0;   // Path A via mounted VxWorks dosFs
  double expt2_ms = 0;         // Path C: NI disk -> NI CPU -> network
  double expt3_ms = 0;         // Path B: disk -> PCI -> NI CPU -> network
  double expt3_disk_ms = 0;    // decomposition of expt3 ("4.2disk")
  double expt3_net_ms = 0;     // ("1.2net")
  double expt3_pci_ms = 0;     // ("0.015pci")

  /// Uniform per-stage breakdowns (the Expt III decomposition generalized
  /// to every path), in stage order: one entry per FramePath stage.
  std::vector<StageLatency> expt1_ufs_stages;
  std::vector<StageLatency> expt1_dosfs_stages;
  std::vector<StageLatency> expt2_stages;
  std::vector<StageLatency> expt3_stages;
};

[[nodiscard]] CriticalPathResult run_critical_path(int n_transfers = 1000,
                                                   const hw::Calibration& cal = {});

// ---------------------------------------------------------------------------
// Table 5: PCI card-to-card transfer benchmarks.
// ---------------------------------------------------------------------------

struct PciBenchResult {
  double mpeg_file_dma_us = 0;    // 773665-byte transfer
  double mpeg_file_dma_mbps = 0;  // MB/s
  double pio_word_read_us = 0;
  double pio_word_write_us = 0;
};

[[nodiscard]] PciBenchResult run_pci_bench(const hw::Calibration& cal = {});

// ---------------------------------------------------------------------------
// Figures 6-10: server-load experiments.
// ---------------------------------------------------------------------------

struct LoadExperimentConfig {
  /// Target average web-load utilization (0 = no load, 0.45, 0.60).
  double target_utilization = 0.0;
  sim::Time horizon = sim::Time::sec(100);
  /// Frames per stream: 100 s of 30 fps video.
  int frames_per_stream = 3000;
  /// Per-stream queue capacity. Producers fill it and stay backpressured,
  /// so the no-load queuing delay plateaus at capacity/30 fps = ~10 s —
  /// Figure 8's no-load curve; under load the slower drain stretches it.
  std::size_t ring_capacity = 300;
  std::uint64_t seed = 5;
  /// Host-only extension (paper §5, Jones et al.): give the DWCS process a
  /// CPU reservation of this fraction of one CPU (0 = none). With a
  /// sufficient reservation the host scheduler rides out the web load.
  double scheduler_reservation = 0.0;
  sim::Time reservation_period = sim::Time::ms(20);
  hw::Calibration cal{};
};

struct StreamOutcome {
  sim::TimeSeries bandwidth_bps;  // client-side delivered bandwidth
  std::vector<std::pair<std::uint64_t, double>> qdelay_ms;  // (frame#, delay)
  std::uint64_t frames_delivered = 0;
  double settle_bandwidth_bps = 0;  // mean over the last third of the run
  double max_qdelay_ms = 0;

  /// Queuing delay of the n-th dispatched frame (Figure 8/10 reads at
  /// frame 300); 0 when fewer frames were sent.
  [[nodiscard]] double qdelay_at_frame(std::uint64_t n) const {
    for (const auto& [frame, d] : qdelay_ms) {
      if (frame >= n) return d;
    }
    return qdelay_ms.empty() ? 0.0 : qdelay_ms.back().second;
  }
};

struct LoadExperimentResult {
  sim::TimeSeries cpu_utilization;  // Figure 6 perfmeter series (percent)
  double avg_utilization = 0;
  double peak_utilization = 0;
  StreamOutcome s1, s2;
};

/// Host-based scheduler under web load (Figures 6, 7, 8). Two CPUs online.
[[nodiscard]] LoadExperimentResult run_host_load_experiment(
    const LoadExperimentConfig& config);

/// NI-based scheduler with the same web load applied to the host
/// (Figures 9, 10). One host CPU online; DWCS runs on the i960 board.
[[nodiscard]] LoadExperimentResult run_ni_load_experiment(
    const LoadExperimentConfig& config);

}  // namespace nistream::apps
