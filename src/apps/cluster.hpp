// Scalable server architectures: multi-NI nodes and clustered servers.
//
// The paper's abstract: "Architectures to build scalable media scheduling
// servers are explored by distributing media schedulers and media stream
// producers among NIs within a server and clustering a number of such
// servers using commodity hardware and software." This module is that
// exploration made concrete:
//
// * ServerNode — one chassis: a PCI segment carrying several scheduler-NIs
//   (each an i960 board running the DVCM + DWCS extension with its own
//   admission controller). Stream placement is least-loaded-first across
//   the node's NIs; each admitted stream gets a paced synthetic producer
//   feeding the chosen NI locally (Path C).
// * MediaCluster — several nodes behind the switch, with a director that
//   places each request on the least-loaded node that can admit it and
//   counts cluster-wide rejections.
//
// §6's capacity caveat is enforced per NI by dwcs::AdmissionController:
// "Scalability for a large number of streams may require careful
// construction" — the bench/ablate_cluster bench sweeps exactly that.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/media_server.hpp"
#include "apps/producer.hpp"
#include "cluster/placement.hpp"
#include "dwcs/admission.hpp"
#include "mpeg/frame.hpp"
#include "sim/coro.hpp"
#include "sim/random.hpp"

namespace nistream::apps {

/// An open stream: where it landed and how to account for it.
struct StreamPlacement {
  int node = -1;
  int ni = -1;
  dwcs::StreamId stream = dwcs::kInvalidStream;
};

class ServerNode {
 public:
  /// Per-frame NI CPU cost used for admission. The Table 2 operating point
  /// is ~95 us, but with hundreds of streams the heaps deepen and late-drop
  /// processing adds decisions, so admission budgets conservatively —
  /// §6's "careful construction": admitting to the microbenchmark number
  /// saturates the NI CPU and collapses delivery (see bench/ablate_cluster).
  static constexpr sim::Time kPerFrameCpu = sim::Time::us(130);

  ServerNode(std::string name, sim::Engine& engine, hw::EthernetSwitch& ether,
             int scheduler_nis, const hw::Calibration& cal = {},
             dvcm::StreamService::Config service_config = {})
      : name_{std::move(name)}, engine_{engine}, cal_{cal} {
    bus_ = std::make_unique<hw::PciBus>(engine, cal.pci);
    for (int i = 0; i < scheduler_nis; ++i) {
      nis_.push_back(std::make_unique<SchedulerNi>(
          engine, *bus_, ether, cal, service_config));
    }
  }

  ServerNode(const ServerNode&) = delete;
  ServerNode& operator=(const ServerNode&) = delete;

  /// Place a stream on the least-loaded NI that admits it; spawns a paced
  /// producer for `n_frames` synthetic frames. Returns nullopt when every
  /// NI's admission controller refuses.
  std::optional<StreamPlacement> open_stream(
      const dwcs::StreamParams& params, std::uint32_t mean_frame_bytes,
      int client_port, int n_frames, std::uint64_t seed) {
    const dwcs::AdmissionController::Request req{
        .tolerance = params.tolerance,
        .period = params.period,
        .mean_frame_bytes = mean_frame_bytes};
    const int best = cluster::pick_least_loaded(
        static_cast<int>(nis_.size()),
        [this](int i) { return total_load(*nis_[static_cast<std::size_t>(i)]); },
        [this, &req](int i) {
          return nis_[static_cast<std::size_t>(i)]->admission->would_admit(req);
        });
    if (best < 0) {
      ++rejected_;
      return std::nullopt;
    }
    SchedulerNi& ni = *nis_[static_cast<std::size_t>(best)];
    ni.admission->admit(req);
    const auto id =
        ni.server->service().create_stream(params, client_port);
    spawn_producer(ni, id, params, mean_frame_bytes, n_frames, seed);
    ++opened_;
    return StreamPlacement{.node = 0, .ni = best, .stream = id};
  }

  [[nodiscard]] int ni_count() const { return static_cast<int>(nis_.size()); }
  [[nodiscard]] NiSchedulerServer& ni_server(int i) {
    return *nis_[static_cast<std::size_t>(i)]->server;
  }
  [[nodiscard]] const dwcs::AdmissionController& admission(int i) const {
    return *nis_[static_cast<std::size_t>(i)]->admission;
  }
  [[nodiscard]] std::uint64_t streams_opened() const { return opened_; }
  [[nodiscard]] std::uint64_t streams_rejected() const { return rejected_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Aggregate fraction of node capacity in use (mean over NIs of the
  /// binding resource). A node with no scheduler-NIs has no capacity at
  /// all: it reports fully loaded, so placement never prefers it.
  [[nodiscard]] double load() const {
    if (nis_.empty()) return 1.0;
    double sum = 0;
    for (const auto& ni : nis_) sum += total_load(*ni);
    return sum / static_cast<double>(nis_.size());
  }

 private:
  struct SchedulerNi {
    std::unique_ptr<NiSchedulerServer> server;
    std::unique_ptr<dwcs::AdmissionController> admission;
    int producer_tasks = 0;
    // One stats block per spawned producer (stable addresses: the pumps
    // hold references for the life of the run).
    std::vector<std::unique_ptr<ProducerStats>> producer_stats;

    SchedulerNi(sim::Engine& engine, hw::PciBus& bus,
                hw::EthernetSwitch& ether, const hw::Calibration& cal,
                const dvcm::StreamService::Config& cfg) {
      server = std::make_unique<NiSchedulerServer>(engine, bus, ether, cfg, cal);
      admission = std::make_unique<dwcs::AdmissionController>(
          cal.ethernet.bits_per_sec / 8.0, ServerNode::kPerFrameCpu);
    }
  };

  [[nodiscard]] static double total_load(const SchedulerNi& ni) {
    return std::max(ni.admission->link_utilization(),
                    ni.admission->cpu_utilization());
  }

  void spawn_producer(SchedulerNi& ni, dwcs::StreamId id,
                      const dwcs::StreamParams& params,
                      std::uint32_t mean_frame_bytes, int n_frames,
                      std::uint64_t seed) {
    // A paced synthetic producer (Segment -> Enqueue): frame sizes jitter
    // around the mean, one frame per period, fed to the chosen NI locally.
    rtos::Task& task = ni.server->kernel().spawn(
        "tProd" + std::to_string(ni.producer_tasks++), 120);
    ni.producer_stats.push_back(std::make_unique<ProducerStats>());
    spawn_synthetic_producer(
        *ni.server, task, id,
        SyntheticStreamSpec{.mean_frame_bytes = mean_frame_bytes,
                            .n_frames = n_frames,
                            .period = params.period,
                            .seed = seed},
        *ni.producer_stats.back());
  }

  std::string name_;
  sim::Engine& engine_;
  hw::Calibration cal_;
  std::unique_ptr<hw::PciBus> bus_;
  std::vector<std::unique_ptr<SchedulerNi>> nis_;
  std::uint64_t opened_ = 0;
  std::uint64_t rejected_ = 0;
};

/// A cluster of ServerNodes behind one switch, with least-loaded placement.
class MediaCluster {
 public:
  MediaCluster(sim::Engine& engine, hw::EthernetSwitch& ether, int nodes,
               int nis_per_node, const hw::Calibration& cal = {},
               dvcm::StreamService::Config service_config = {})
      : MediaCluster{engine, ether,
                     std::vector<int>(static_cast<std::size_t>(nodes),
                                      nis_per_node),
                     cal, service_config} {}

  /// Heterogeneous cluster: nis_per_node[n] scheduler-NIs in node n (0 is
  /// legal — a director-only or storage node that can never host a stream).
  MediaCluster(sim::Engine& engine, hw::EthernetSwitch& ether,
               const std::vector<int>& nis_per_node,
               const hw::Calibration& cal = {},
               dvcm::StreamService::Config service_config = {}) {
    for (std::size_t n = 0; n < nis_per_node.size(); ++n) {
      nodes_.push_back(std::make_unique<ServerNode>(
          "node" + std::to_string(n), engine, ether, nis_per_node[n], cal,
          service_config));
    }
  }

  std::optional<StreamPlacement> open_stream(const dwcs::StreamParams& params,
                                             std::uint32_t mean_frame_bytes,
                                             int client_port, int n_frames,
                                             std::uint64_t seed) {
    // Least-loaded node first; fall through on admission failure.
    const auto order = cluster::load_order(
        static_cast<int>(nodes_.size()),
        [this](int i) { return nodes_[static_cast<std::size_t>(i)]->load(); });
    for (const int n : order) {
      auto placed = nodes_[static_cast<std::size_t>(n)]->open_stream(
          params, mean_frame_bytes, client_port, n_frames, seed);
      if (placed) {
        placed->node = n;
        return placed;
      }
    }
    ++rejected_;
    return std::nullopt;
  }

  [[nodiscard]] int node_count() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] ServerNode& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  [[nodiscard]] std::uint64_t opened() const {
    std::uint64_t sum = 0;
    for (const auto& n : nodes_) sum += n->streams_opened();
    return sum;
  }

 private:
  std::vector<std::unique_ptr<ServerNode>> nodes_;
  std::uint64_t rejected_ = 0;
};

}  // namespace nistream::apps
