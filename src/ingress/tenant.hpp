// ingress::TenantDirectory — who owns which stream, and how much of the NI
// each owner may reserve.
//
// A tenant is a named share of the admission headroom plus a DWCS monitor
// scope: sessions SETUP against rtsp://ni/<tenant>/<media>, the front door
// resolves the first URI path segment here, charges the request against the
// tenant's link/CPU budget BEFORE global admission, and keys the violation
// monitor by (tenant scope, stream). One tenant exhausting its share gets
// per-tenant 453s while every other tenant's budget — and the global
// headroom they admit against — stays untouched: the paper's host-immunity
// claim restated as tenant immunity.
//
// Scope 0 is the default tenant: single-segment URIs (the pre-multi-tenant
// "rtsp://ni/stream") and unknown tenant names resolve there, so every
// legacy caller is a single-tenant deployment with a full-share budget.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dwcs/types.hpp"
#include "ingress/flow_table.hpp"

namespace nistream::ingress {

/// Fractions of the admission headroom (not of raw capacity) a tenant may
/// hold on each resource. The default tenant keeps full shares.
struct TenantBudget {
  double link_share = 1.0;
  double cpu_share = 1.0;
};

class TenantDirectory {
 public:
  struct Tenant {
    std::string name;
    TenantBudget budget{};
    double link_used = 0;
    double cpu_used = 0;
    std::uint64_t admitted = 0;   // live reservations
    std::uint64_t rejected = 0;   // denied by THIS tenant's budget
  };

  explicit TenantDirectory(
      const std::vector<std::pair<std::string, TenantBudget>>& named = {}) {
    tenants_.push_back(Tenant{.name = "default"});
    for (const auto& [name, budget] : named) add_tenant(name, budget);
  }

  /// Register a named tenant; its id doubles as the monitor scope.
  TenantId add_tenant(std::string name, TenantBudget budget) {
    tenants_.push_back(Tenant{.name = std::move(name), .budget = budget});
    return static_cast<TenantId>(tenants_.size() - 1);
  }

  /// Name → tenant id; unknown or empty names land on the default tenant.
  [[nodiscard]] TenantId resolve(std::string_view name) const {
    if (!name.empty()) {
      for (std::size_t i = 1; i < tenants_.size(); ++i) {
        if (tenants_[i].name == name) return static_cast<TenantId>(i);
      }
    }
    return 0;
  }

  [[nodiscard]] std::size_t count() const { return tenants_.size(); }
  [[nodiscard]] const Tenant& tenant(TenantId id) const {
    return tenants_[id];
  }

  /// Would this request fit the tenant's budget? `headroom` is the global
  /// admission headroom the shares are fractions of.
  [[nodiscard]] bool would_admit(TenantId id, double link_load,
                                 double cpu_load, double headroom) const {
    const Tenant& t = tenants_[id];
    return t.link_used + link_load <= t.budget.link_share * headroom &&
           t.cpu_used + cpu_load <= t.budget.cpu_share * headroom;
  }

  void reserve(TenantId id, double link_load, double cpu_load) {
    Tenant& t = tenants_[id];
    t.link_used += link_load;
    t.cpu_used += cpu_load;
    ++t.admitted;
  }

  void release(TenantId id, double link_load, double cpu_load) {
    Tenant& t = tenants_[id];
    t.link_used -= link_load;
    t.cpu_used -= cpu_load;
    if (t.link_used < 0) t.link_used = 0;
    if (t.cpu_used < 0) t.cpu_used = 0;
    --t.admitted;
  }

  void note_rejected(TenantId id) { ++tenants_[id].rejected; }

  /// Bind a scheduler stream to its owning tenant, so dispatch/drop
  /// observers can key the violation monitor by (tenant scope, stream).
  void bind_stream(dwcs::StreamId stream, TenantId id) {
    if (stream >= stream_scope_.size()) {
      stream_scope_.resize(static_cast<std::size_t>(stream) + 1, 0);
    }
    stream_scope_[stream] = id;
  }

  [[nodiscard]] TenantId scope_of(dwcs::StreamId stream) const {
    return stream < stream_scope_.size() ? stream_scope_[stream] : 0;
  }

 private:
  std::vector<Tenant> tenants_;
  std::vector<TenantId> stream_scope_;
};

/// First path segment of an RTSP URI when the path has at least two
/// non-empty segments ("rtsp://ni/acme/movie" → "acme"); empty view when the
/// URI names no tenant ("rtsp://ni/stream", the legacy single-segment form).
[[nodiscard]] inline std::string_view tenant_from_uri(std::string_view uri) {
  const std::size_t scheme = uri.find("://");
  std::string_view rest =
      scheme == std::string_view::npos ? uri : uri.substr(scheme + 3);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  const std::string_view path = rest.substr(slash + 1);
  const std::size_t seg = path.find('/');
  if (seg == std::string_view::npos || seg == 0) return {};
  if (seg + 1 >= path.size()) return {};  // trailing slash, no second segment
  return path.substr(0, seg);
}

}  // namespace nistream::ingress
