// ingress::ClassifyStage — packet classification as a composable path stage.
//
// Slots into any path:: pipeline like the segmentation stage does: the frame
// pays a fixed-function classification cost on the NI CPU (base cycles plus
// a per-probe increment, so deeper probe chains cost more), the FlowTable
// decision stamps the frame's tenant, and an exact match rebinds the frame
// to the flow's scheduler stream — demux before the scheduler, where the
// paper puts it. The stage is stamped by FramePath like every other, so the
// staged_total tiling invariant (per-stage durations sum exactly to the
// frame's end-to-end latency) holds with classification in the pipeline.
#pragma once

#include <cstdint>

#include "ingress/flow_table.hpp"
#include "path/stages.hpp"

namespace nistream::ingress {

/// Default key extraction for simulation traffic: the frame's (tenant,
/// stream) identity rendered as the canonical synthetic 5-tuple.
[[nodiscard]] inline FlowKey frame_flow_key(const path::StagedFrame& f) {
  return flow_key_of(f.tenant, f.stream);
}

/// CpuCtx is rtos::Task or hostos::Process — anything with an awaitable
/// consume_cycles(n), same contract as path::SegmentStage.
template <typename CpuCtx>
class ClassifyStage final : public path::Stage {
 public:
  using KeyFn = FlowKey (*)(const path::StagedFrame&);

  struct Stats {
    std::uint64_t classified = 0;  // exact matches (frame bound to a stream)
    std::uint64_t unbound = 0;     // prefix-only or miss decisions
  };

  ClassifyStage(CpuCtx& ctx, FlowTable& table, std::int64_t base_cycles = 150,
                std::int64_t cycles_per_probe = 30,
                KeyFn key_fn = &frame_flow_key)
      : ctx_{ctx}, table_{table}, base_cycles_{base_cycles},
        cycles_per_probe_{cycles_per_probe}, key_fn_{key_fn} {}

  [[nodiscard]] const char* name() const override { return "classify"; }

  sim::Coro apply(path::StagedFrame& f) override {
    const Decision d = table_.classify(key_fn_(f));
    co_await ctx_.consume_cycles(base_cycles_ + cycles_per_probe_ * d.probes);
    f.tenant = d.tenant;
    if (d.match == Match::kExact) {
      f.stream = d.stream;
      ++stats_.classified;
    } else {
      ++stats_.unbound;
    }
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  CpuCtx& ctx_;
  FlowTable& table_;
  std::int64_t base_cycles_;
  std::int64_t cycles_per_probe_;
  KeyFn key_fn_;
  Stats stats_;
};

}  // namespace nistream::ingress
