// ingress::IngressDemux — the NI's raw ingress surface.
//
// A UDP port whose receive callback feeds a classification loop on a
// dedicated wind task: every packet is looked up in the FlowTable, charged
// its classification cycles, and then either delivered into the stream
// service ring (exact match, deliver verdict), billed to a tenant and
// dropped (prefix-only match — the flood came from inside a tenant's
// address block, so the drop is attributable), or dropped unattributed
// (miss). The task runs at the LEAST urgent NI priority: unbound traffic
// competes only for leftover i960 cycles, never with the dispatch task, the
// media pumps, or even the RTSP control loop — which is exactly how a flood
// of garbage fails to move any admitted stream's violation rate (the
// ingress chaos bench's gate).
#pragma once

#include <cstdint>
#include <vector>

#include "dvcm/stream_service.hpp"
#include "hw/ethernet.hpp"
#include "ingress/flow_table.hpp"
#include "net/udp.hpp"
#include "rtos/wind.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"

namespace nistream::ingress {

/// Simulation packets carry their claimed (tenant, stream) identity packed
/// into Packet::stream_id; the demux never trusts it directly — it renders
/// the claim into a wire key and asks the FlowTable.
[[nodiscard]] inline std::uint64_t pack_flow(TenantId tenant,
                                             dwcs::StreamId stream) {
  return (static_cast<std::uint64_t>(tenant) << 32) | stream;
}

[[nodiscard]] inline FlowKey packet_flow_key(const net::Packet& p) {
  return flow_key_of(static_cast<TenantId>(p.stream_id >> 32),
                     static_cast<dwcs::StreamId>(p.stream_id & 0xFFFFFFFFu));
}

class IngressDemux {
 public:
  using KeyFn = FlowKey (*)(const net::Packet&);

  struct Config {
    /// Least urgent by default (above every spawned default): classification
    /// of unbound traffic must only ever get leftover cycles.
    int priority = 200;
    std::int64_t base_cycles = 150;
    std::int64_t cycles_per_probe = 30;
    /// Per-tenant counter slots (tenant ids at or above this are folded into
    /// slot 0); sized once so the classify loop never allocates.
    std::size_t tenant_slots = 16;
    KeyFn key_fn = &packet_flow_key;
  };

  struct Stats {
    std::uint64_t received = 0;
    std::uint64_t delivered = 0;          // exact match, enqueued to the ring
    std::uint64_t dropped_rule = 0;       // exact match with drop verdict
    std::uint64_t dropped_attributed = 0; // prefix-only: billed to a tenant
    std::uint64_t dropped_unmatched = 0;  // miss: nobody's traffic
    std::uint64_t ring_full = 0;          // matched but the ring refused
  };

  struct TenantCounters {
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
  };

  // Delegation instead of `Config config = {}`: GCC 12 cannot use a nested
  // class's default member initializers in a default argument.
  IngressDemux(sim::Engine& engine, hw::EthernetSwitch& ether,
               rtos::WindKernel& kernel, FlowTable& table,
               dvcm::StreamService& service)
      : IngressDemux{engine, ether, kernel, table, service, Config{}} {}

  IngressDemux(sim::Engine& engine, hw::EthernetSwitch& ether,
               rtos::WindKernel& kernel, FlowTable& table,
               dvcm::StreamService& service, Config config)
      : table_{table}, service_{service}, config_{config}, inbox_{engine},
        rx_{engine, ether, net::kNiStackCost,
            [this](const net::Packet& p, sim::Time) { inbox_.send(p); }},
        task_{kernel.spawn("ni-ingress", config.priority)},
        by_tenant_(config.tenant_slots == 0 ? 1 : config.tenant_slots) {
    loop().detach();
  }

  IngressDemux(const IngressDemux&) = delete;
  IngressDemux& operator=(const IngressDemux&) = delete;

  /// The UDP port raw ingress traffic lands on.
  [[nodiscard]] int port() const { return rx_.port(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const TenantCounters& tenant_counters(TenantId id) const {
    return by_tenant_[id < by_tenant_.size() ? id : 0];
  }
  [[nodiscard]] std::size_t backlog() const { return inbox_.size(); }

 private:
  sim::Coro loop() {
    for (;;) {
      const net::Packet p = co_await inbox_.receive();
      ++stats_.received;
      const Decision d = table_.classify(config_.key_fn(p));
      co_await task_.consume_cycles(config_.base_cycles +
                                    config_.cycles_per_probe * d.probes);
      TenantCounters& tc =
          by_tenant_[d.tenant < by_tenant_.size() ? d.tenant : 0];
      switch (d.match) {
        case Match::kExact:
          if (d.drop) {
            ++stats_.dropped_rule;
            ++tc.dropped;
          } else if (service_.enqueue(d.stream, p.bytes, p.frame_type)) {
            ++stats_.delivered;
            ++tc.delivered;
          } else {
            ++stats_.ring_full;
            ++tc.dropped;
          }
          break;
        case Match::kPrefix:
          ++stats_.dropped_attributed;
          ++tc.dropped;
          break;
        case Match::kMiss:
          ++stats_.dropped_unmatched;
          break;
      }
    }
  }

  FlowTable& table_;
  dvcm::StreamService& service_;
  Config config_;
  sim::Mailbox<net::Packet> inbox_;
  net::UdpEndpoint rx_;
  rtos::Task& task_;
  std::vector<TenantCounters> by_tenant_;
  Stats stats_;
};

}  // namespace nistream::ingress
