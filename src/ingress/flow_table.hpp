// ingress::FlowTable — the NI's packet-classification fast path.
//
// Tuple-space search (TTSS, see PAPERS.md): rules are grouped into a small
// set of *tuple categories*, each defined by a field mask (which of the
// 5-tuple fields participate exactly). A lookup probes every category's
// open-addressed exact-match table with the masked key — one hash probe
// chain per category, no per-rule scan — and falls back to a longest-prefix
// binary trie over the source address for wildcard tenant rules that no
// exact tuple covers. Traffic that matches nothing gets the default verdict
// (drop): an NI that cannot attribute a packet to a paying (tenant, stream)
// never spends scheduler cycles on it, which is the paper's host-immunity
// claim (Figs. 6–10) applied at the front door of the card itself.
//
// Discipline, inherited from dwcs::StreamView: the per-rule record is a
// static_asserted 32-byte struct (two records per cache line), every table
// and the trie node pool are sized once at construction, and the lookup
// path — classify() — touches the heap ZERO times (audited by the
// counting-operator-new test in tests/ingress/). Rules are add-only within
// a run: the control plane installs flows at SETUP-time rates, the data
// plane classifies at packet rates, and the asymmetry is the point.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "dwcs/types.hpp"

namespace nistream::ingress {

/// Tenant handle == DWCS monitor scope: scope 0 is the default (unnamed)
/// tenant, named tenants count up from 1 (see ingress/tenant.hpp).
using TenantId = std::uint32_t;

/// The classification 5-tuple. Addresses are IPv4 host-order words; the
/// simulation substrate synthesizes them (flow_key_of below), real ingress
/// would lift them from headers.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 17;  // UDP, the only wire protocol the RTP plane uses

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

/// Field mask bits naming which key fields a tuple category matches exactly
/// (unset fields are wildcards within that category).
enum : std::uint8_t {
  kMatchSrcIp = 1u << 0,
  kMatchDstIp = 1u << 1,
  kMatchSrcPort = 1u << 2,
  kMatchDstPort = 1u << 3,
  kMatchProto = 1u << 4,
  kMatchFullTuple =
      kMatchSrcIp | kMatchDstIp | kMatchSrcPort | kMatchDstPort | kMatchProto,
};

/// One installed rule. Exactly 32 bytes — two per cache line, same record
/// discipline as dwcs::StreamView.
struct FlowRecord {
  std::uint32_t src_ip = 0;    // masked key fields (wildcards zeroed)
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;
  std::uint8_t flags = 0;      // kOccupied | kDrop
  std::uint16_t category = 0;
  TenantId tenant = 0;
  dwcs::StreamId stream = dwcs::kInvalidStream;
  std::uint64_t hits = 0;

  static constexpr std::uint8_t kOccupied = 1u << 0;
  static constexpr std::uint8_t kDrop = 1u << 1;
};
static_assert(sizeof(FlowRecord) == 32,
              "FlowRecord must stay two-per-cache-line");

/// How far a lookup got. kExact binds the packet to a scheduler stream;
/// kPrefix attributes it to a tenant (wildcard rule) without a stream —
/// enough to bill the drop to the right customer; kMiss is unattributable.
enum class Match : std::uint8_t { kMiss, kPrefix, kExact };

struct Decision {
  Match match = Match::kMiss;
  bool drop = true;  // default verdict: unmatched ingress never goes further
  TenantId tenant = 0;
  dwcs::StreamId stream = dwcs::kInvalidStream;
  std::uint16_t category = kMissCategory;
  std::uint8_t probes = 0;      // open-addressing probes across categories
  std::uint8_t prefix_len = 0;  // kPrefix: length of the winning prefix

  static constexpr std::uint16_t kMissCategory = 0xFFFF;
  static constexpr std::uint16_t kTrieCategory = 0xFFFE;
};

class FlowTable {
 public:
  struct Config {
    /// Node pool + rule pool for the wildcard prefix trie, sized once.
    std::size_t trie_nodes = 4096;
    std::size_t trie_rules = 256;
  };

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t exact_hits = 0;
    std::uint64_t trie_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t probes = 0;     // total open-addressing probes
    std::uint64_t max_probes = 0; // worst single lookup
  };

  // Delegation instead of `Config config = {}`: GCC 12 cannot use a nested
  // class's default member initializers in a default argument.
  FlowTable() : FlowTable(Config{}) {}
  explicit FlowTable(Config config) : config_{config} {
    nodes_.reserve(config_.trie_nodes);
    rules_.reserve(config_.trie_rules);
    nodes_.push_back(TrieNode{});  // root
  }

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// Add a tuple category matching the masked fields exactly, able to hold
  /// `capacity` rules (slot count is the next power of two above 8/7 of
  /// that, so probe chains stay short at full occupancy). Lookups probe
  /// categories in add order — install the most specific first.
  std::uint16_t add_category(std::uint8_t mask, std::size_t capacity) {
    assert(categories_.size() < Decision::kTrieCategory);
    Category c;
    c.mask = mask;
    c.capacity = capacity;
    std::size_t slots = 8;
    while (slots < capacity + capacity / 7 + 1) slots <<= 1;
    c.slot_mask = slots - 1;
    c.records.assign(slots, FlowRecord{});
    categories_.push_back(std::move(c));
    return static_cast<std::uint16_t>(categories_.size() - 1);
  }

  /// Install one exact rule into `category` (the key is masked by the
  /// category's field mask first). False when the category is at capacity
  /// or the masked key is already present — fixed-capacity, no growth.
  bool insert(std::uint16_t category, const FlowKey& key, TenantId tenant,
              dwcs::StreamId stream, bool drop = false) {
    Category& c = categories_[category];
    if (c.installed == c.capacity) return false;
    const FlowKey m = masked(key, c.mask);
    std::size_t i = hash_key(m) & c.slot_mask;
    for (;; i = (i + 1) & c.slot_mask) {
      FlowRecord& r = c.records[i];
      if ((r.flags & FlowRecord::kOccupied) == 0) {
        r.src_ip = m.src_ip;
        r.dst_ip = m.dst_ip;
        r.src_port = m.src_port;
        r.dst_port = m.dst_port;
        r.proto = m.proto;
        r.flags = static_cast<std::uint8_t>(
            FlowRecord::kOccupied | (drop ? FlowRecord::kDrop : 0));
        r.category = category;
        r.tenant = tenant;
        r.stream = stream;
        r.hits = 0;
        ++c.installed;
        return true;
      }
      if (record_matches(r, m)) return false;  // duplicate masked key
    }
  }

  /// Install a wildcard prefix rule: src_ip/len → tenant. False when the
  /// node or rule pool is exhausted (fixed capacity, never grown) or the
  /// exact prefix is already ruled.
  bool insert_prefix(std::uint32_t src_prefix, std::uint8_t len,
                     TenantId tenant, bool drop = true) {
    assert(len <= 32);
    if (rules_.size() == config_.trie_rules) return false;
    std::int32_t node = 0;
    for (std::uint8_t depth = 0; depth < len; ++depth) {
      const int bit = (src_prefix >> (31 - depth)) & 1;
      std::int32_t next = nodes_[static_cast<std::size_t>(node)].child[bit];
      if (next < 0) {
        if (nodes_.size() == config_.trie_nodes) return false;
        next = static_cast<std::int32_t>(nodes_.size());
        nodes_.push_back(TrieNode{});
        nodes_[static_cast<std::size_t>(node)].child[bit] = next;
      }
      node = next;
    }
    TrieNode& leaf = nodes_[static_cast<std::size_t>(node)];
    if (leaf.rule >= 0) return false;
    leaf.rule = static_cast<std::int32_t>(rules_.size());
    rules_.push_back(PrefixRule{tenant, len, drop});
    return true;
  }

  /// Classify one packet key: tuple-space search over every category (first
  /// exact hit in add order wins), longest-prefix trie fallback, default
  /// drop. Allocation-free; mutates only counters.
  Decision classify(const FlowKey& key) {
    Decision d;
    ++stats_.lookups;
    std::uint32_t probes = 0;
    for (std::size_t ci = 0; ci < categories_.size(); ++ci) {
      Category& c = categories_[ci];
      const FlowKey m = masked(key, c.mask);
      std::size_t i = hash_key(m) & c.slot_mask;
      for (;; i = (i + 1) & c.slot_mask) {
        ++probes;
        FlowRecord& r = c.records[i];
        if ((r.flags & FlowRecord::kOccupied) == 0) break;
        if (record_matches(r, m)) {
          ++r.hits;
          ++stats_.exact_hits;
          d.match = Match::kExact;
          d.drop = (r.flags & FlowRecord::kDrop) != 0;
          d.tenant = r.tenant;
          d.stream = r.stream;
          d.category = static_cast<std::uint16_t>(ci);
          note_probes(d, probes);
          return d;
        }
      }
    }
    // Trie fallback: walk src_ip bits, remember the deepest ruled node.
    std::int32_t node = 0;
    std::int32_t best = nodes_[0].rule;
    std::uint8_t best_len = 0;
    for (std::uint8_t depth = 0; depth < 32 && node >= 0; ++depth) {
      node = nodes_[static_cast<std::size_t>(node)]
                 .child[(key.src_ip >> (31 - depth)) & 1];
      if (node >= 0 && nodes_[static_cast<std::size_t>(node)].rule >= 0) {
        best = nodes_[static_cast<std::size_t>(node)].rule;
        best_len = static_cast<std::uint8_t>(depth + 1);
      }
    }
    if (best >= 0) {
      const PrefixRule& rule = rules_[static_cast<std::size_t>(best)];
      ++stats_.trie_hits;
      d.match = Match::kPrefix;
      d.drop = rule.drop;
      d.tenant = rule.tenant;
      d.category = Decision::kTrieCategory;
      d.prefix_len = best_len;
      note_probes(d, probes);
      return d;
    }
    ++stats_.misses;
    note_probes(d, probes);
    return d;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t categories() const { return categories_.size(); }
  [[nodiscard]] std::size_t installed(std::uint16_t category) const {
    return categories_[category].installed;
  }
  [[nodiscard]] std::size_t prefix_rules() const { return rules_.size(); }

  /// Hits counter of the rule an exact lookup would land on (0 if absent) —
  /// test/telemetry access, not a fast path.
  [[nodiscard]] std::uint64_t hits(std::uint16_t category,
                                   const FlowKey& key) const {
    const Category& c = categories_[category];
    const FlowKey m = masked(key, c.mask);
    std::size_t i = hash_key(m) & c.slot_mask;
    for (;; i = (i + 1) & c.slot_mask) {
      const FlowRecord& r = c.records[i];
      if ((r.flags & FlowRecord::kOccupied) == 0) return 0;
      if (record_matches(r, m)) return r.hits;
    }
  }

 private:
  struct Category {
    std::uint8_t mask = kMatchFullTuple;
    std::size_t capacity = 0;
    std::size_t installed = 0;
    std::size_t slot_mask = 0;
    std::vector<FlowRecord> records;
  };

  struct TrieNode {
    std::int32_t child[2] = {-1, -1};
    std::int32_t rule = -1;
  };

  struct PrefixRule {
    TenantId tenant = 0;
    std::uint8_t len = 0;
    bool drop = true;
  };

  [[nodiscard]] static FlowKey masked(const FlowKey& k, std::uint8_t mask) {
    FlowKey m;
    m.src_ip = (mask & kMatchSrcIp) ? k.src_ip : 0;
    m.dst_ip = (mask & kMatchDstIp) ? k.dst_ip : 0;
    m.src_port = (mask & kMatchSrcPort) ? k.src_port : 0;
    m.dst_port = (mask & kMatchDstPort) ? k.dst_port : 0;
    m.proto = (mask & kMatchProto) ? k.proto : 0;
    return m;
  }

  [[nodiscard]] static bool record_matches(const FlowRecord& r,
                                           const FlowKey& m) {
    return r.src_ip == m.src_ip && r.dst_ip == m.dst_ip &&
           r.src_port == m.src_port && r.dst_port == m.dst_port &&
           r.proto == m.proto;
  }

  [[nodiscard]] static std::uint64_t hash_key(const FlowKey& k) {
    // splitmix64 finalizer over the packed tuple — cheap, well-mixed, and
    // stable across runs (the replay gates depend on that).
    std::uint64_t h =
        (static_cast<std::uint64_t>(k.src_ip) << 32) | k.dst_ip;
    h ^= (static_cast<std::uint64_t>(k.src_port) << 48) |
         (static_cast<std::uint64_t>(k.dst_port) << 32) | k.proto;
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
  }

  void note_probes(Decision& d, std::uint32_t probes) {
    d.probes = static_cast<std::uint8_t>(probes > 255 ? 255 : probes);
    stats_.probes += probes;
    if (probes > stats_.max_probes) stats_.max_probes = probes;
  }

  Config config_;
  std::vector<Category> categories_;
  std::vector<TrieNode> nodes_;
  std::vector<PrefixRule> rules_;
  Stats stats_;
};

/// Canonical synthetic 5-tuple for a (tenant, stream) pair — how the
/// simulation substrate (benches, demux key extraction, tests) maps its
/// identifiers onto wire-shaped keys. Tenant rides the 10.x second octet,
/// stream spreads across the low address bits and the source port, so up to
/// 2^20 streams per tenant stay collision-free.
[[nodiscard]] inline FlowKey flow_key_of(TenantId tenant,
                                         dwcs::StreamId stream) {
  FlowKey k;
  k.src_ip = 0x0A00'0000u | ((tenant & 0xFFu) << 16) | (stream >> 16);
  k.dst_ip = 0xC0A8'0001u;
  k.src_port = static_cast<std::uint16_t>(stream & 0xFFFF);
  k.dst_port = 5004;
  k.proto = 17;
  return k;
}

/// The /16 prefix flow_key_of puts all of one tenant's traffic under.
[[nodiscard]] inline std::uint32_t tenant_prefix_of(TenantId tenant) {
  return 0x0A00'0000u | ((tenant & 0xFFu) << 16);
}

}  // namespace nistream::ingress
