// The cluster-wide shadow registry: stream identity that outlives boards.
//
// Each logical stream admitted to the cluster gets a GlobalStreamId here at
// admission time — before any board learns about it — because the board's
// copy of the state dies with the board (the lesson of the single-board
// failover server, generalized). A stream's *residence* says where it is
// being served right now: which board, under which board incarnation, and
// what service-local id it answers to there. Residences are keyed by
// (board incarnation, local id), never by local id alone: board 2's stream
// 3 in incarnation 0 and the stream that happens to get local id 3 after
// board 2 reboots are different placements with different QoS histories.
//
// The registry records, it does not decide: migration policy (who adopts
// what, in which order) lives in the control plane.
#pragma once

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/wire.hpp"
#include "dwcs/types.hpp"

namespace nistream::cluster {

/// Serving location of a stream at one point in its life.
struct Residence {
  /// Member board index, or kHost when the stream spilled to the host
  /// scheduler (the last-resort path).
  static constexpr int kHost = -1;
  static constexpr int kNowhere = -2;  // in flight between boards

  int board = kNowhere;
  std::uint64_t incarnation = 0;  // board incarnation at placement time
  dwcs::StreamId local = dwcs::kInvalidStream;
  /// Monitor scope this placement records QoS under (see
  /// dwcs::WindowViolationMonitor::StreamKey).
  std::uint32_t monitor_scope = 0;

  [[nodiscard]] bool on_host() const { return board == kHost; }
  [[nodiscard]] bool placed() const { return board != kNowhere; }
};

/// Everything the control plane remembers about one logical stream.
struct StreamRecord {
  GlobalStreamId id = 0;
  dwcs::StreamParams params{};
  int client_port = -1;
  std::uint32_t mean_frame_bytes = 1000;
  /// Send-side sequence position, refreshed from checkpoints at migration.
  std::uint64_t frames_sent = 0;

  /// Original placement, the drain-back target after the home board reboots.
  int home_board = -1;
  dwcs::StreamId home_local = dwcs::kInvalidStream;

  Residence where{};               // current (or last, while in flight)
  std::vector<Residence> history;  // superseded placements, QoS aggregation

  /// Migration state. in_flight: evacuated, enqueues impossible until the
  /// adoption lands. draining: still served at `where`, a fail-back
  /// shipment to flight_dst is on the wire.
  bool in_flight = false;
  bool draining = false;
  int flight_dst = Residence::kNowhere;
  std::uint64_t flight_epoch = 0;  // stale-adoption guard

  std::uint64_t migrations = 0;
};

class ShadowRegistry {
 public:
  /// Admit a new logical stream; residence is filled in by the caller once
  /// placement succeeds.
  StreamRecord& add(const dwcs::StreamParams& params, int client_port,
                    std::uint32_t mean_frame_bytes) {
    StreamRecord rec;
    rec.id = static_cast<GlobalStreamId>(records_.size());
    rec.params = params;
    rec.client_port = client_port;
    rec.mean_frame_bytes = mean_frame_bytes;
    records_.push_back(std::move(rec));
    return records_.back();
  }

  [[nodiscard]] StreamRecord& record(GlobalStreamId id) {
    assert(id < records_.size());
    return records_[id];
  }
  [[nodiscard]] const StreamRecord& record(GlobalStreamId id) const {
    assert(id < records_.size());
    return records_[id];
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::vector<StreamRecord>& records() { return records_; }
  [[nodiscard]] const std::vector<StreamRecord>& records() const {
    return records_;
  }

  /// Bind (board, local id) -> global for observer translation. Local ids
  /// are never reused within a service, so bindings are stable; fail-back
  /// onto the home board re-binds the same pair to the same global.
  void bind(int board, dwcs::StreamId local, GlobalStreamId global) {
    by_local_[local_key(board, local)] = global;
  }
  /// Global id serving (board, local), or nullptr for a local id the
  /// registry never placed (e.g. a stream a test created behind its back).
  [[nodiscard]] const GlobalStreamId* lookup(int board,
                                             dwcs::StreamId local) const {
    const auto it = by_local_.find(local_key(board, local));
    return it == by_local_.end() ? nullptr : &it->second;
  }

  /// Streams whose current residence is `board` (in global-id order).
  [[nodiscard]] std::vector<GlobalStreamId> resident_on(int board) const {
    std::vector<GlobalStreamId> out;
    for (const auto& r : records_) {
      if (r.where.placed() && r.where.board == board) out.push_back(r.id);
    }
    return out;
  }

 private:
  [[nodiscard]] static std::uint64_t local_key(int board,
                                               dwcs::StreamId local) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(board))
            << 32) |
           local;
  }

  std::vector<StreamRecord> records_;
  std::unordered_map<std::uint64_t, GlobalStreamId> by_local_;
};

}  // namespace nistream::cluster
