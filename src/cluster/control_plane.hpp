// The cluster control plane: board liveness and stream placement across N
// NIs, with NI-to-NI failover.
//
// The paper's scalability argument is "add NIs, not CPUs" (§6's careful
// construction). The single-board failover server (apps/failover_server.hpp)
// betrays that argument under faults: when its one board dies, every stream
// degrades to the *host* scheduler — exactly the resource the architecture
// exists to spare. This plane generalizes it to N boards, so a board death
// is absorbed by the boards that remain:
//
//   board b trips ──▶ purge b's backlog (loss made visible)
//                 ──▶ evacuate b's streams in violation-pressure order:
//                       most-hurt stream first picks the least-loaded
//                       sibling with admission headroom (capacity-aware:
//                       a failover must not become the overload that kills
//                       the next board), checkpoint shipped NI-to-NI over
//                       the reliable interconnect (cluster/wire.hpp);
//                 ──▶ only the remainder — streams no sibling can hold —
//                       spills to the lazily-built host scheduler.
//   board b reboots (new incarnation) ──▶ migrated streams drain back home
//                       under the same choreography, each served at its
//                       refuge until the home adoption lands (no second
//                       outage during fail-back).
//
// One HostWatchdog per board (phase-staggered), one shadow registry for the
// cluster (cluster/registry.hpp), one violation monitor keyed by
// (board incarnation, local id) so a migrated stream's post-crash QoS never
// aliases its pre-crash counters. Every decision is deterministic: victims
// sort by (violation pressure desc, global id asc), placement ties go to
// the lowest board index, and shipments ride an in-order reliable channel —
// two same-seed chaos runs produce identical charge fingerprints
// (tests/cluster/replay_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "apps/media_server.hpp"
#include "cluster/placement.hpp"
#include "cluster/registry.hpp"
#include "cluster/wire.hpp"
#include "dvcm/heartbeat.hpp"
#include "dvcm/remote.hpp"
#include "dwcs/admission.hpp"
#include "dwcs/monitor.hpp"

namespace nistream::cluster {

class ClusterControlPlane {
 public:
  struct Config {
    int boards = 3;
    dvcm::StreamService::Config service{};
    dvcm::WatchdogConfig watchdog{};
    /// Admissible fraction of each NI resource (see dwcs::AdmissionController).
    double admission_headroom = 0.90;
    /// Per-frame NI CPU cost used for admission (apps::ServerNode budgets
    /// 130 us; benches shrink capacity by raising this).
    sim::Time per_frame_cpu = sim::Time::us(130);
    /// Phase offset between successive boards' watchdog probe loops.
    sim::Time watchdog_stagger = sim::Time::ms(7);
    /// CPU binding for the spill host scheduler (Solaris pbind).
    int host_affinity = -1;
  };

  struct Metrics {
    std::uint64_t failovers = 0;            // board trips handled
    std::uint64_t failbacks = 0;            // board recoveries handled
    std::uint64_t migrations_started = 0;   // checkpoints shipped to siblings
    std::uint64_t migrations_completed = 0; // sibling adoptions landed
    std::uint64_t drainbacks_started = 0;   // fail-back shipments
    std::uint64_t drainbacks_completed = 0;
    std::uint64_t host_takeover_streams = 0; // spilled: no sibling headroom
    std::uint64_t stale_adoptions = 0;       // superseded-epoch arrivals
    std::uint64_t frames_purged = 0;
    std::uint64_t frames_rejected = 0;  // enqueue refusals (incl. in transit)
    std::uint64_t rejected_admission = 0;  // open_stream: no NI headroom
    /// Last trip: board-down to watchdog trip (detection latency).
    double failover_latency_ms = 0;
    /// Last trip: board-down to the final evacuated stream re-admitted
    /// somewhere (sibling adoption landed or host spill done).
    double readmission_complete_ms = 0;
    /// Last reboot: board-down to the final drain-back landed.
    double recovery_time_ms = 0;
  };

  ClusterControlPlane(hostos::HostMachine& host, hw::EthernetSwitch& ether,
                      Config config, const hw::Calibration& cal = {})
      : host_{host},
        engine_{host.engine()},
        ether_{ether},
        cal_{cal},
        config_{config} {
    for (int b = 0; b < config.boards; ++b) {
      auto m = std::make_unique<Member>();
      m->bus = std::make_unique<hw::PciBus>(engine_, cal.pci);
      m->ni = std::make_unique<apps::NiSchedulerServer>(
          engine_, *m->bus, ether, config.service, cal);
      m->admission = std::make_unique<dwcs::AdmissionController>(
          cal.ethernet.bits_per_sec / 8.0, config.per_frame_cpu,
          config.admission_headroom);

      auto hb = std::make_unique<dvcm::HeartbeatExtension>();
      m->heartbeat = hb.get();
      m->ni->runtime().load_extension(std::move(hb));
      auto ext = std::make_unique<ClusterExtension>(m->ni->service());
      m->cluster_ext = ext.get();
      ext->set_on_adopt(
          [this, b](const ShippedCheckpoint& sc) { on_adopted(b, sc); });
      m->ni->runtime().load_extension(std::move(ext));

      m->port = std::make_unique<dvcm::ReliableRemoteVcmPort>(
          m->ni->runtime(), ether, cal.ethernet.stack_traversal);
      m->ship = std::make_unique<dvcm::ReliableRemoteVcmClient>(
          engine_, ether, cal.ethernet.stack_traversal, m->port->port());

      dvcm::WatchdogConfig wd = config.watchdog;
      wd.initial_delay =
          wd.initial_delay + config.watchdog_stagger * static_cast<std::int64_t>(b);
      m->watchdog = std::make_unique<dvcm::HostWatchdog>(
          engine_, m->ni->host_api(), wd);
      m->watchdog->set_on_trip(
          [this, b](sim::Time now) { fail_over(b, now); });
      m->watchdog->set_on_recovery([this, b](sim::Time now, std::uint64_t inc) {
        fail_back(b, now, inc);
      });
      m->watchdog->start();

      observe_member(b, m->ni->service());
      members_.push_back(std::move(m));
    }
  }

  ClusterControlPlane(const ClusterControlPlane&) = delete;
  ClusterControlPlane& operator=(const ClusterControlPlane&) = delete;

  /// Gate board `b` on a health state machine (crash/hang/reboot); also
  /// feeds the latency metrics (down-at timestamps, incarnations).
  void attach_health(int b, fault::BoardHealth& h) {
    members_[static_cast<std::size_t>(b)]->ni->attach_health(h);
    members_[static_cast<std::size_t>(b)]->health = &h;
  }

  /// Admit a stream: capacity-aware least-loaded placement across the alive
  /// boards. Returns its cluster-wide id, or nullopt when no NI has
  /// headroom (fresh admission never spills to the host — the last-resort
  /// path is reserved for keeping *already-admitted* streams alive).
  std::optional<GlobalStreamId> open_stream(const dwcs::StreamParams& params,
                                            std::uint32_t mean_frame_bytes,
                                            int client_port) {
    const auto req = request_of(params, mean_frame_bytes);
    const int b = pick_least_loaded(
        static_cast<int>(members_.size()),
        [this](int i) { return load_of(i); },
        [this, &req](int i) {
          return serving(i) && member(i).admission->would_admit(req);
        });
    if (b < 0) {
      ++metrics_.rejected_admission;
      return std::nullopt;
    }
    Member& m = member(b);
    m.admission->admit(req);
    const auto local = m.ni->service().create_stream(params, client_port);

    StreamRecord& rec = registry_.add(params, client_port, mean_frame_bytes);
    rec.home_board = b;
    rec.home_local = local;
    rec.where = Residence{.board = b,
                          .incarnation = incarnation(b),
                          .local = local,
                          .monitor_scope = scope(b, incarnation(b))};
    registry_.bind(b, local, rec.id);
    monitor_.add_stream({rec.where.monitor_scope, local}, params.tolerance);
    return rec.id;
  }

  /// Producer side, routed to the stream's current residence. A refusal —
  /// board down, in flight between boards, ring full — is a lost frame from
  /// the viewer's point of view, charged against the stream's window at the
  /// placement that was (or last was) responsible for it.
  bool enqueue(GlobalStreamId id, std::uint32_t bytes, mpeg::FrameType type) {
    StreamRecord& rec = registry_.record(id);
    if (rec.in_flight || !rec.where.placed()) {
      // In flight the record still names its last residence; the lost frame
      // counts against the placement whose death caused the migration.
      if (rec.where.placed()) {
        monitor_.record({rec.where.monitor_scope, rec.where.local},
                        dwcs::WindowViolationMonitor::Outcome::kDropped);
      }
      ++metrics_.frames_rejected;
      return false;
    }
    const bool ok =
        rec.where.on_host()
            ? host_server_->service().enqueue(rec.where.local, bytes, type)
            : member(rec.where.board)
                  .ni->service()
                  .enqueue(rec.where.local, bytes, type);
    if (!ok) {
      monitor_.record({rec.where.monitor_scope, rec.where.local},
                      dwcs::WindowViolationMonitor::Outcome::kDropped);
      ++metrics_.frames_rejected;
    }
    return ok;
  }

  // ---- observability ----

  [[nodiscard]] int board_count() const {
    return static_cast<int>(members_.size());
  }
  [[nodiscard]] apps::NiSchedulerServer& ni(int b) { return *member(b).ni; }
  [[nodiscard]] const dwcs::AdmissionController& admission(int b) const {
    return *members_[static_cast<std::size_t>(b)]->admission;
  }
  [[nodiscard]] dvcm::HostWatchdog& watchdog(int b) {
    return *member(b).watchdog;
  }
  [[nodiscard]] bool board_serving(int b) const { return serving(b); }
  [[nodiscard]] apps::HostSchedulerServer* host_server() {
    return host_server_.get();
  }
  [[nodiscard]] ShadowRegistry& registry() { return registry_; }
  [[nodiscard]] dwcs::WindowViolationMonitor& monitor() { return monitor_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] std::uint64_t streams_opened() const {
    return registry_.size();
  }

  /// Lifetime QoS of one logical stream, aggregated over every placement it
  /// has lived at (each placement's counters stay frozen once superseded).
  [[nodiscard]] std::uint64_t violating_windows(GlobalStreamId id) const {
    std::uint64_t sum = 0;
    for_each_placement(id, [&](dwcs::WindowViolationMonitor::StreamKey k) {
      sum += monitor_.violating_windows(k);
    });
    return sum;
  }
  [[nodiscard]] std::uint64_t packets(GlobalStreamId id) const {
    std::uint64_t sum = 0;
    for_each_placement(id, [&](dwcs::WindowViolationMonitor::StreamKey k) {
      sum += monitor_.packets(k);
    });
    return sum;
  }
  [[nodiscard]] double violation_rate(GlobalStreamId id) const {
    std::uint64_t viol = 0;
    std::uint64_t windows = 0;
    for_each_placement(id, [&](dwcs::WindowViolationMonitor::StreamKey k) {
      viol += monitor_.violating_windows(k);
      windows += monitor_.window_positions(k);
    });
    return windows ? static_cast<double>(viol) / static_cast<double>(windows)
                   : 0.0;
  }

  /// Deterministic mass re-admission order: violation pressure (lifetime
  /// violation rate) descending — the streams the outage hurt most get the
  /// sibling slots — with global id ascending as the tie-break. Exposed for
  /// the ordering tests.
  [[nodiscard]] std::vector<GlobalStreamId> readmission_order(
      std::vector<GlobalStreamId> ids) const {
    std::sort(ids.begin(), ids.end(),
              [this](GlobalStreamId a, GlobalStreamId b) {
                const double pa = violation_rate(a);
                const double pb = violation_rate(b);
                if (pa != pb) return pa > pb;
                return a < b;
              });
    return ids;
  }

 private:
  struct Member {
    std::unique_ptr<hw::PciBus> bus;
    std::unique_ptr<apps::NiSchedulerServer> ni;
    std::unique_ptr<dwcs::AdmissionController> admission;
    dvcm::HeartbeatExtension* heartbeat = nullptr;
    ClusterExtension* cluster_ext = nullptr;
    std::unique_ptr<dvcm::ReliableRemoteVcmPort> port;
    std::unique_ptr<dvcm::ReliableRemoteVcmClient> ship;
    std::unique_ptr<dvcm::HostWatchdog> watchdog;
    fault::BoardHealth* health = nullptr;
    /// Tripped and not yet recovered: excluded from placement.
    bool offline = false;
  };

  [[nodiscard]] Member& member(int b) {
    return *members_[static_cast<std::size_t>(b)];
  }
  [[nodiscard]] bool serving(int b) const {
    return !members_[static_cast<std::size_t>(b)]->offline;
  }
  [[nodiscard]] double load_of(int b) const {
    const auto& a = *members_[static_cast<std::size_t>(b)]->admission;
    return std::max(a.link_utilization(), a.cpu_utilization());
  }
  [[nodiscard]] std::uint64_t incarnation(int b) const {
    const auto* h = members_[static_cast<std::size_t>(b)]->health;
    return h != nullptr ? h->incarnation() : 0;
  }

  /// Monitor scope of a placement: board index folded with the board
  /// incarnation, so a rebooted board's adoptions start fresh QoS windows
  /// while a hang-recovered board resumes its old ones. Scope 0 is reserved
  /// for legacy single-scheduler monitor users; the host spill path gets a
  /// scope of its own (the host never reboots in this model).
  [[nodiscard]] static std::uint32_t scope(int board,
                                           std::uint64_t incarnation) {
    return (static_cast<std::uint32_t>(board + 1) << 20) |
           static_cast<std::uint32_t>(incarnation & 0xFFFFF);
  }
  static constexpr std::uint32_t kHostScope = 0xFFFF'FFFFu;

  [[nodiscard]] static dwcs::AdmissionController::Request request_of(
      const dwcs::StreamParams& params, std::uint32_t mean_frame_bytes) {
    return {.tolerance = params.tolerance,
            .period = params.period,
            .mean_frame_bytes = mean_frame_bytes};
  }
  [[nodiscard]] static dwcs::AdmissionController::Request request_of(
      const StreamRecord& rec) {
    return request_of(rec.params, rec.mean_frame_bytes);
  }

  /// QoS observers: translate a service's (board, local id) outcome to the
  /// placement that owns it. A superseded placement can still dispatch (a
  /// refuge board flushing frames accepted before the drain-back landed);
  /// those outcomes belong to the old placement's counters, found in the
  /// record's history.
  void observe_member(int b, dvcm::StreamService& svc) {
    svc.set_dispatch_observer(
        [this, b](dwcs::StreamId local, const dwcs::Dispatch& d) {
          record_outcome(b, local,
                         d.late
                             ? dwcs::WindowViolationMonitor::Outcome::kLate
                             : dwcs::WindowViolationMonitor::Outcome::kOnTime);
        });
    svc.set_drop_observer(
        [this, b](dwcs::StreamId local, const dwcs::FrameDescriptor&) {
          record_outcome(b, local,
                         dwcs::WindowViolationMonitor::Outcome::kDropped);
        });
  }

  void record_outcome(int board, dwcs::StreamId local,
                      dwcs::WindowViolationMonitor::Outcome o) {
    const auto* g = registry_.lookup(board, local);
    if (g == nullptr) return;
    const StreamRecord& rec = registry_.record(*g);
    if (rec.where.placed() && rec.where.board == board &&
        rec.where.local == local) {
      monitor_.record({rec.where.monitor_scope, local}, o);
      return;
    }
    for (auto it = rec.history.rbegin(); it != rec.history.rend(); ++it) {
      if (it->board == board && it->local == local) {
        monitor_.record({it->monitor_scope, local}, o);
        return;
      }
    }
  }

  // ---- failover choreography ----

  void fail_over(int b, sim::Time now) {
    Member& m = member(b);
    if (m.offline) return;
    m.offline = true;
    ++metrics_.failovers;
    ++epoch_;
    if (m.health != nullptr &&
        m.health->last_down_at() > sim::Time::zero()) {
      trip_down_at_ = m.health->last_down_at();
      metrics_.failover_latency_ms = (now - trip_down_at_).to_ms();
    } else {
      trip_down_at_ = now;
      metrics_.failover_latency_ms = 0;
    }

    // Frames queued on the dead board are gone; the purge routes each loss
    // through the drop observer into the dead placement's window counters.
    metrics_.frames_purged += m.ni->service().purge_backlog();

    // Victims: everything resident on b, everything in flight *to* b, and
    // every drain-back targeting b (the home died again mid-drain).
    std::vector<GlobalStreamId> victims;
    for (auto& rec : registry_.records()) {
      if (rec.in_flight && rec.flight_dst == b) {
        // Reservation made at ship time; the board it was made on is dead.
        member(b).admission->release(request_of(rec));
        rec.in_flight = false;
        rec.flight_dst = Residence::kNowhere;
        victims.push_back(rec.id);
      } else if (rec.draining && rec.flight_dst == b) {
        // Cancel the drain; the stream keeps living at its refuge.
        member(b).admission->release(request_of(rec));
        rec.draining = false;
        rec.flight_dst = Residence::kNowhere;
        ++epoch_;  // invalidate the in-flight drain shipment
      } else if (rec.where.placed() && rec.where.board == b) {
        member(b).admission->release(request_of(rec));
        if (rec.draining) {
          // Was draining *from* b? (cannot happen: drains target the home
          // board, and b just died — but clear defensively.)
          rec.draining = false;
          rec.flight_dst = Residence::kNowhere;
        }
        victims.push_back(rec.id);
      }
    }

    pending_readmissions_ = 0;
    for (const GlobalStreamId id : readmission_order(std::move(victims))) {
      evacuate(registry_.record(id), b);
    }
    if (pending_readmissions_ == 0) {
      metrics_.readmission_complete_ms = (now - trip_down_at_).to_ms();
    }
  }

  /// Re-admit one victim of board `dead`: least-loaded sibling with
  /// headroom, else the host.
  void evacuate(StreamRecord& rec, int dead) {
    const auto req = request_of(rec);
    const int target = pick_least_loaded(
        static_cast<int>(members_.size()),
        [this](int i) { return load_of(i); },
        [this, &req, dead](int i) {
          return i != dead && serving(i) &&
                 member(i).admission->would_admit(req);
        });
    if (target >= 0) {
      member(target).admission->admit(req);
      ship_checkpoint(rec, target);
      ++metrics_.migrations_started;
      ++pending_readmissions_;
      return;
    }
    // No sibling has headroom: the host is the last resort. The registry is
    // host-resident, so the spill is a local restore, not a shipment.
    ensure_host_server();
    const auto local = host_server_->service().adopt(checkpoint_of(rec));
    supersede(rec, Residence{.board = Residence::kHost,
                             .incarnation = 0,
                             .local = local,
                             .monitor_scope = kHostScope});
    registry_.bind(Residence::kHost, local, rec.id);
    monitor_.add_stream({kHostScope, local}, rec.params.tolerance);
    ++metrics_.host_takeover_streams;
  }

  void fail_back(int b, sim::Time now, std::uint64_t /*incarnation*/) {
    Member& m = member(b);
    if (!m.offline) return;
    m.offline = false;
    ++metrics_.failbacks;
    ++epoch_;

    // Drain migrated streams home, most-pressured first — the same
    // choreography as the evacuation, in reverse. Each stays live at its
    // refuge until the home adoption lands, so fail-back causes no second
    // outage. A stream the home can no longer admit stays where it is.
    std::vector<GlobalStreamId> migrated;
    for (const auto& rec : registry_.records()) {
      if (rec.home_board == b && rec.where.placed() &&
          rec.where.board != b && !rec.in_flight && !rec.draining) {
        migrated.push_back(rec.id);
      }
    }
    pending_drains_ = 0;
    for (const GlobalStreamId id : readmission_order(std::move(migrated))) {
      StreamRecord& rec = registry_.record(id);
      const auto req = request_of(rec);
      if (!m.admission->would_admit(req)) continue;
      m.admission->admit(req);
      rec.draining = true;
      rec.flight_dst = b;
      rec.flight_epoch = epoch_;
      ship(rec, b, /*reuse_local=*/rec.home_local);
      ++metrics_.drainbacks_started;
      ++pending_drains_;
    }
    if (pending_drains_ == 0 && m.health != nullptr &&
        m.health->last_down_at() > sim::Time::zero()) {
      metrics_.recovery_time_ms = (now - m.health->last_down_at()).to_ms();
    }
  }

  /// Shipment of an evacuation (fresh local id at the target).
  void ship_checkpoint(StreamRecord& rec, int target) {
    rec.in_flight = true;
    rec.flight_dst = target;
    rec.flight_epoch = epoch_;
    ship(rec, target, /*reuse_local=*/
         target == rec.home_board ? rec.home_local : dwcs::kInvalidStream);
  }

  void ship(StreamRecord& rec, int target, dwcs::StreamId reuse_local) {
    auto sc = std::make_shared<ShippedCheckpoint>();
    sc->global = rec.id;
    sc->epoch = rec.flight_epoch;
    sc->source_incarnation = rec.where.incarnation;
    sc->body = checkpoint_of(rec);
    sc->reuse_local = reuse_local;
    member(target).ship->invoke(kAdoptStream, /*w0=*/rec.id, std::move(sc),
                                ShippedCheckpoint::kWireBytes);
  }

  /// Checkpoint body for a record, with frames_sent read live from the
  /// current residence (the registry's copy is only as fresh as the last
  /// migration).
  [[nodiscard]] dvcm::StreamCheckpoint checkpoint_of(const StreamRecord& rec) {
    std::uint64_t sent = rec.frames_sent;
    if (rec.where.placed()) {
      sent = rec.where.on_host()
                 ? host_server_->service().frames_sent(rec.where.local)
                 : member(rec.where.board)
                       .ni->service()
                       .frames_sent(rec.where.local);
    }
    return {.id = rec.id,
            .params = rec.params,
            .client_port = rec.client_port,
            .frames_sent = sent};
  }

  /// An adoption landed on board `b` (fired by its ClusterExtension, on the
  /// board's dispatch path).
  void on_adopted(int b, const ShippedCheckpoint& sc) {
    StreamRecord& rec = registry_.record(sc.global);
    if (sc.epoch != rec.flight_epoch || rec.flight_dst != b ||
        !(rec.in_flight || rec.draining)) {
      ++metrics_.stale_adoptions;
      return;
    }
    const bool was_drain = rec.draining;
    dvcm::StreamService& svc = member(b).ni->service();
    dwcs::StreamId local;
    if (sc.reuse_local != dwcs::kInvalidStream &&
        static_cast<std::size_t>(sc.reuse_local) <
            svc.scheduler().stream_count()) {
      svc.readopt(sc.reuse_local, sc.body);
      local = sc.reuse_local;
    } else {
      local = svc.adopt(sc.body);
    }

    if (was_drain && rec.where.placed()) {
      // The refuge hands the stream back: release its reservation.
      if (rec.where.on_host()) {
        // Host spill holds no reservation.
      } else {
        member(rec.where.board).admission->release(request_of(rec));
      }
    }
    rec.frames_sent = sc.body.frames_sent;
    const std::uint64_t inc = incarnation(b);
    supersede(rec, Residence{.board = b,
                             .incarnation = inc,
                             .local = local,
                             .monitor_scope = scope(b, inc)});
    registry_.bind(b, local, rec.id);
    monitor_.add_stream({rec.where.monitor_scope, local},
                        rec.params.tolerance);
    ++rec.migrations;

    if (was_drain) {
      ++metrics_.drainbacks_completed;
      if (--pending_drains_ == 0 && member(b).health != nullptr &&
          member(b).health->last_down_at() > sim::Time::zero()) {
        metrics_.recovery_time_ms =
            (engine_.now() - member(b).health->last_down_at()).to_ms();
      }
    } else {
      ++metrics_.migrations_completed;
      if (--pending_readmissions_ == 0) {
        metrics_.readmission_complete_ms =
            (engine_.now() - trip_down_at_).to_ms();
      }
    }
  }

  /// Move the record's current residence into history and install the new
  /// one, clearing flight state.
  void supersede(StreamRecord& rec, Residence next) {
    if (rec.where.placed()) rec.history.push_back(rec.where);
    rec.where = next;
    rec.in_flight = false;
    rec.draining = false;
    rec.flight_dst = Residence::kNowhere;
  }

  void ensure_host_server() {
    if (host_server_) return;
    // Lazily built: while every board lives, the host runs no scheduler at
    // all — that is the paper's whole point.
    host_server_ = std::make_unique<apps::HostSchedulerServer>(
        host_, ether_, config_.service, cal_, config_.host_affinity);
    observe_member(Residence::kHost, host_server_->service());
  }

  template <typename Fn>
  void for_each_placement(GlobalStreamId id, Fn&& fn) const {
    const StreamRecord& rec = registry_.record(id);
    for (const auto& r : rec.history) fn({r.monitor_scope, r.local});
    if (rec.where.placed()) fn({rec.where.monitor_scope, rec.where.local});
  }

  hostos::HostMachine& host_;
  sim::Engine& engine_;
  hw::EthernetSwitch& ether_;
  hw::Calibration cal_;
  Config config_;
  std::vector<std::unique_ptr<Member>> members_;
  std::unique_ptr<apps::HostSchedulerServer> host_server_;
  ShadowRegistry registry_;
  dwcs::WindowViolationMonitor monitor_;
  Metrics metrics_;
  std::uint64_t epoch_ = 0;
  std::uint64_t pending_readmissions_ = 0;
  std::uint64_t pending_drains_ = 0;
  sim::Time trip_down_at_ = sim::Time::zero();
};

}  // namespace nistream::cluster
