// Checkpoint-shipping wire format: how a stream moves between boards.
//
// When a board dies, the control plane evacuates its streams to sibling NIs
// by shipping each one's dvcm::StreamCheckpoint over the NI-to-NI
// interconnect as a DVCM instruction (kAdoptStream). Shipping rides the
// *reliable* remote path (dvcm::ReliableRemoteVcmClient -> TcpLite ->
// dvcm::ReliableRemoteVcmPort), so an adoption arrives exactly once and in
// order even on a degraded segment — a lost checkpoint would strand a
// stream forever, which a lost media frame never does.
//
// Wire layout (modeled, not byte-serialized — the simulation charges the
// interconnect for kWireBytes and hands the struct across as the payload):
//
//   RemoteVcmPort header            24 B   (instruction id, w0, w1)
//   global stream id                 4 B
//   failover epoch                   8 B
//   source (incarnation, local id)   8+4 B
//   StreamParams {x, y, period}      8+8+8 B
//   lossy flag + pad                 4 B
//   client port                      4 B
//   frames_sent                      8 B
//   reuse_local (fail-back)          4 B
//   ------------------------------------
//   kWireBytes                      56 B body (+ 24 B header on the wire)
//
// The NI-side half is ClusterExtension: a DVCM extension whose kAdoptStream
// handler runs on the *adopting board's* CPU (the registry dispatch path
// charges handler cycles to the board), admits the stream into the local
// StreamService, and reports the assigned local id back to the control
// plane's shadow registry.
#pragma once

#include <cstdint>
#include <functional>

#include "dvcm/instruction.hpp"
#include "dvcm/runtime.hpp"
#include "dvcm/stream_service.hpp"

namespace nistream::cluster {

/// Cluster-wide stream identity, owned by the control plane's registry.
using GlobalStreamId = std::uint32_t;

/// Adoption instruction (extension range, above the heartbeat block).
inline constexpr dvcm::InstructionId kAdoptStream =
    dvcm::kExtensionBase + 0x500;

/// One stream's state in flight between boards.
struct ShippedCheckpoint {
  static constexpr std::uint32_t kWireBytes = 56;

  GlobalStreamId global = 0;
  /// Failover epoch the shipment belongs to; the control plane ignores
  /// arrivals from a superseded epoch (e.g. the adopting board itself died
  /// while the checkpoint was on the wire and the stream was re-routed).
  std::uint64_t epoch = 0;
  /// Incarnation of the residence being evacuated — the registry key half
  /// that distinguishes a rebooted board's streams from its previous life's.
  std::uint64_t source_incarnation = 0;
  dvcm::StreamCheckpoint body{};
  /// Fail-back: the home board's service still knows the stream under this
  /// local id (the entry survived in the scheduler); reuse it instead of
  /// minting a new one. kInvalidStream for first-time adoption.
  dwcs::StreamId reuse_local = dwcs::kInvalidStream;
};

/// NI-side half of checkpoint shipping. The control plane installs one per
/// board and points on_adopt at its registry-update path; the handler's
/// service work (create_stream and its heap operations) is charged to the
/// adopting board through the normal dispatch-task accounting.
class ClusterExtension final : public dvcm::ExtensionModule {
 public:
  /// (arriving checkpoint) -> adopted. Fired on the adopting board at the
  /// instant the instruction is dispatched there.
  using AdoptHandler = std::function<void(const ShippedCheckpoint&)>;

  explicit ClusterExtension(dvcm::StreamService& service)
      : service_{service} {}

  [[nodiscard]] const char* name() const override { return "cluster"; }

  void install(dvcm::VcmRuntime& runtime) override {
    runtime_ = &runtime;
    runtime.registry().add(kAdoptStream, [this](const hw::I2oMessage& m) {
      const auto sc = std::static_pointer_cast<ShippedCheckpoint>(m.payload);
      if (!sc) return;
      if (runtime_->board().health() != nullptr &&
          !runtime_->board().health()->alive()) {
        // Dead on arrival: the board cannot admit anything. The control
        // plane's trip handler re-routes in-flight streams; dropping here
        // (rather than adopting into a corpse) keeps the registry honest.
        ++dead_on_arrival_;
        return;
      }
      ++adopted_;
      if (on_adopt_) on_adopt_(*sc);
    });
  }

  void set_on_adopt(AdoptHandler h) { on_adopt_ = std::move(h); }

  [[nodiscard]] dvcm::StreamService& service() { return service_; }
  [[nodiscard]] std::uint64_t adopted() const { return adopted_; }
  [[nodiscard]] std::uint64_t dead_on_arrival() const {
    return dead_on_arrival_;
  }

 private:
  dvcm::StreamService& service_;
  dvcm::VcmRuntime* runtime_ = nullptr;
  AdoptHandler on_adopt_;
  std::uint64_t adopted_ = 0;
  std::uint64_t dead_on_arrival_ = 0;
};

}  // namespace nistream::cluster
