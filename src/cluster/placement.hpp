// Capacity-aware least-loaded placement — the one decision rule every layer
// of the scalable-server story shares.
//
// The paper's abstract distributes "media schedulers and media stream
// producers among NIs within a server" and clusters such servers; every
// level of that hierarchy places a stream the same way: among the candidates
// whose admission controller still has headroom, pick the least loaded
// (ties to the lowest index, so placement is deterministic and replayable).
//
// Three callers sit on these helpers:
//  * apps::ServerNode     — NIs within one chassis;
//  * apps::MediaCluster   — nodes behind the switch;
//  * cluster::ClusterControlPlane — mass re-admission after a board death,
//    where honoring headroom is what keeps a failover from cascading into
//    the overload that kills the next board.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

namespace nistream::cluster {

/// Index of the least-loaded candidate in [0, n) for which `admissible(i)`
/// holds, or -1 when none qualifies. `load(i)` returns the candidate's
/// binding-resource utilization; ties go to the lower index.
template <typename LoadFn, typename AdmitFn>
[[nodiscard]] int pick_least_loaded(int n, LoadFn&& load, AdmitFn&& admissible) {
  int best = -1;
  double best_load = 0;
  for (int i = 0; i < n; ++i) {
    if (!admissible(i)) continue;
    const double l = load(i);
    if (best < 0 || l < best_load) {
      best = i;
      best_load = l;
    }
  }
  return best;
}

/// Candidate indices [0, n) sorted least-loaded first (stable, so equal
/// loads keep index order). For callers that fall through to the next
/// candidate when admission refuses at the preferred one.
template <typename LoadFn>
[[nodiscard]] std::vector<int> load_order(int n, LoadFn&& load) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return load(a) < load(b); });
  return order;
}

}  // namespace nistream::cluster
